"""Content-addressed plan cache with near-spec (stale) lookup.

The cache key is a digest over everything that determines a plan bit-
for-bit: the *model content* (layer count, parameter bytes, optimizer
state, sample bytes -- not just the name), the *server spec* (GPU count,
per-GPU and host specs, topology), the minibatch, and every search +
schedule setting of :class:`~repro.core.harmony.HarmonyOptions`.  Two
requests with the same fingerprints share a plan across tenants and
across time; a request differing in *any* search or schedule setting
misses (the cross-request correctness tests enumerate these).  The one
deliberate exception: ``search_workers`` is normalized out of the key,
because the worker-pool search is bit-identical to the serial search by
construction (see ``SearchSettings.workers``) -- a plan searched with 4
workers *is* the serial plan.

For the degradation ladder the cache also indexes plans by *family* --
(model fingerprint, minibatch, options fingerprint) without the server
-- so a breaker-open request can be served a **near-spec** plan: a
cached plan for the same workload on *fewer* devices, relabeled onto the
requested device range via
:func:`repro.elastic.rebind.relabel_graph`.

Eviction is LRU over a fixed capacity; evicted plans leave their family
index too, so a near-spec lookup can never resurrect an evicted plan.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Optional

from repro.core.harmony import HarmonyOptions
from repro.hardware.server import ServerSpec
from repro.models.spec import ModelSpec


def _digest(*parts: object) -> str:
    raw = "|".join(str(p) for p in parts).encode()
    return hashlib.sha256(raw).hexdigest()[:16]


def model_fingerprint(model: ModelSpec) -> str:
    """Content address of a model: renaming a model cannot fake a hit,
    and two identical architectures under different names share one."""
    return _digest(
        "model", model.n_layers, model.n_parameters, model.weight_bytes,
        model.model_state_bytes, model.sample_bytes,
    )


def server_fingerprint(server: ServerSpec) -> str:
    """Digest of the full server spec (GPU/host/topology dataclass
    reprs are deterministic field-order renderings)."""
    return _digest(
        "server", server.n_gpus, server.gpu, server.host, server.topology
    )


def options_fingerprint(options: HarmonyOptions) -> str:
    """Digest of every plan-relevant option.

    Spans the full search settings (u_fmax/u_bmax, capacity fraction,
    exhaustive, equi_fb) and schedule options (mode, grouping, jit, p2p,
    offload_optimizer, prefetch) plus the seed; ``workers`` is pinned to
    1 first because the forked search is bit-identical to the serial one.
    """
    settings = replace(options.search_settings(), workers=1)
    return _digest(
        "options", settings, options.schedule_options(), options.seed
    )


def plan_key(model: ModelSpec, server: ServerSpec, minibatch: int,
             options: HarmonyOptions) -> str:
    """The content-addressed cache key for one planning request."""
    return _digest(
        "plan", model_fingerprint(model), server_fingerprint(server),
        minibatch, options_fingerprint(options),
    )


def family_key(model: ModelSpec, minibatch: int,
               options: HarmonyOptions) -> tuple:
    """The near-spec grouping: same workload, any server size."""
    return (model_fingerprint(model), minibatch,
            options_fingerprint(options))


class PlanCache:
    """LRU plan cache plus the per-family near-spec index."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._plans: OrderedDict[str, Any] = OrderedDict()
        #: family -> {key: n_gpus} for surviving entries
        self._families: dict[tuple, dict[str, int]] = {}
        #: key -> family, for eviction bookkeeping
        self._member_family: dict[str, tuple] = {}
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, key: str) -> Optional[Any]:
        """Exact lookup; counts hit/miss and refreshes LRU order."""
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._plans.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: str, plan: Any, *, family: Optional[tuple] = None,
            n_gpus: Optional[int] = None) -> None:
        """Insert (or refresh) a plan; evicts LRU past capacity."""
        if key in self._plans:
            self._plans.move_to_end(key)
            self._plans[key] = plan
            return
        self._plans[key] = plan
        if family is not None and n_gpus is not None:
            self._families.setdefault(family, {})[key] = n_gpus
            self._member_family[key] = family
        if self.capacity is not None and len(self._plans) > self.capacity:
            evicted, _ = self._plans.popitem(last=False)
            self.evictions += 1
            fam = self._member_family.pop(evicted, None)
            if fam is not None:
                members = self._families.get(fam)
                if members is not None:
                    members.pop(evicted, None)
                    if not members:
                        self._families.pop(fam, None)

    def near(self, family: tuple, gpus: int,
             exclude: str = "") -> Optional[tuple[int, str, Any]]:
        """Best near-spec entry: the largest cached plan of this family
        with ``n_gpus <= gpus`` (its graph relabels injectively onto the
        requested device range; a *larger* plan never fits).  Returns
        ``(n_gpus, key, plan)`` or None.  ``exclude`` skips the exact
        key already probed, and ties break on the lexically smallest key
        so the choice is deterministic.
        """
        members = self._families.get(family)
        if not members:
            return None
        candidates = sorted(
            (-n, key) for key, n in members.items()
            if key != exclude and n <= gpus and key in self._plans
        )
        if not candidates:
            return None
        n_gpus, key = -candidates[0][0], candidates[0][1]
        self.stale_hits += 1
        self._plans.move_to_end(key)
        return n_gpus, key, self._plans[key]
