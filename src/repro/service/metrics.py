"""Service-level metrics: admission, outcomes, breaker, latency quantiles.

One :class:`ServiceMetrics` instance accumulates over a service run.
Everything here is derived from virtual time and seeded draws, so two
runs of the same workload + seed produce bit-identical snapshots --
the storm regression test compares ``json.dumps(snapshot())`` across
runs.  Latency quantiles use the nearest-rank method (deterministic, no
interpolation) over served+degraded requests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.service.request import Outcome


@dataclass
class ServiceMetrics:
    """Counters and distributions for one service run."""

    #: requests submitted (admitted + shed at the door)
    requests: int = 0
    #: requests that made it past admission control
    admitted: int = 0
    #: terminal outcome counts, keyed by :class:`Outcome` value
    outcomes: dict[str, int] = field(default_factory=dict)
    #: planner attempt retries (after a crashed attempt, before backoff)
    retries: int = 0
    #: planner attempts that failed (crash, infeasible) or timed out
    planner_failures: int = 0
    #: chaos deliveries, by kind
    chaos_slowdowns: int = 0
    chaos_crashes: int = 0
    chaos_poisoned: int = 0
    #: breaker lifecycle counts (mirrors the breaker's own counters)
    breaker_trips: int = 0
    breaker_flaps: int = 0
    #: plan-cache traffic (folded from the cache at run end)
    cache_hits: int = 0
    cache_misses: int = 0
    #: degradation-ladder rungs actually used
    stale_rebinds: int = 0
    baseline_plans: int = 0
    #: queue/backlog high-water marks
    peak_queue_depth: int = 0
    #: simulated training work executed for run requests
    runs_executed: int = 0
    run_virtual_seconds: float = 0.0
    #: fleet co-placement (all zero when the service runs fleetless)
    fleet_servers: int = 0
    fleet_gpus: int = 0
    fleet_placements: int = 0
    fleet_identity: int = 0
    fleet_partitioned: int = 0
    fleet_timesliced: int = 0
    #: fleet binds proved by the analyzer / rejected (partition too small)
    fleet_certified: int = 0
    fleet_rejections: int = 0
    #: integral of occupied GPUs over virtual time (GPU-seconds)
    fleet_gpu_seconds: float = 0.0
    #: high-water occupied fraction of the fleet's GPU capacity
    fleet_peak_occupancy: float = 0.0
    #: virtual time at which the last request resolved
    makespan: float = 0.0
    #: arrival->resolution virtual latencies of served+degraded requests
    latencies: list[float] = field(default_factory=list)

    # -- recording ---------------------------------------------------------------

    def count(self, outcome: Outcome) -> None:
        self.outcomes[outcome.value] = self.outcomes.get(outcome.value, 0) + 1

    def of(self, outcome: Outcome) -> int:
        return self.outcomes.get(outcome.value, 0)

    # -- derived -----------------------------------------------------------------

    @property
    def resolved(self) -> int:
        return sum(self.outcomes.values())

    def _group(self, group: str) -> int:
        return sum(
            n for value, n in self.outcomes.items()
            if Outcome(value).group == group
        )

    @property
    def served(self) -> int:
        return self._group("served")

    @property
    def degraded(self) -> int:
        return self._group("degraded")

    @property
    def shed(self) -> int:
        return self._group("shed")

    @property
    def failed(self) -> int:
        return self._group("failed")

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def fleet_utilization(self) -> float:
        """Time-averaged occupied fraction of the fleet's GPU capacity
        over the makespan (0.0 without a fleet or an empty run)."""
        capacity = self.fleet_gpus * self.makespan
        return self.fleet_gpu_seconds / capacity if capacity > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def latency_quantile(self, q: float) -> float:
        """Nearest-rank quantile of served+degraded latency; 0.0 if none."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50_latency(self) -> float:
        return self.latency_quantile(0.50)

    @property
    def p99_latency(self) -> float:
        return self.latency_quantile(0.99)

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready dict capturing *all* state (bit-identity tests
        serialize this; two identical seeded runs must agree exactly)."""
        return {
            "requests": self.requests,
            "admitted": self.admitted,
            "outcomes": dict(sorted(self.outcomes.items())),
            "served": self.served,
            "degraded": self.degraded,
            "shed": self.shed,
            "failed": self.failed,
            "retries": self.retries,
            "planner_failures": self.planner_failures,
            "chaos_slowdowns": self.chaos_slowdowns,
            "chaos_crashes": self.chaos_crashes,
            "chaos_poisoned": self.chaos_poisoned,
            "breaker_trips": self.breaker_trips,
            "breaker_flaps": self.breaker_flaps,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "stale_rebinds": self.stale_rebinds,
            "baseline_plans": self.baseline_plans,
            "peak_queue_depth": self.peak_queue_depth,
            "runs_executed": self.runs_executed,
            "run_virtual_seconds": self.run_virtual_seconds,
            "fleet": {
                "servers": self.fleet_servers,
                "gpus": self.fleet_gpus,
                "placements": self.fleet_placements,
                "identity": self.fleet_identity,
                "partitioned": self.fleet_partitioned,
                "timesliced": self.fleet_timesliced,
                "certified": self.fleet_certified,
                "rejections": self.fleet_rejections,
                "gpu_seconds": self.fleet_gpu_seconds,
                "peak_occupancy": self.fleet_peak_occupancy,
                "utilization": self.fleet_utilization,
            },
            "makespan": self.makespan,
            "shed_rate": self.shed_rate,
            "p50_latency": self.p50_latency,
            "p99_latency": self.p99_latency,
            "latencies": list(self.latencies),
        }

    def describe(self) -> str:
        lines = [
            f"service: {self.requests} request(s), {self.admitted} admitted; "
            f"{self.served} served, {self.degraded} degraded, "
            f"{self.shed} shed ({self.shed_rate * 100:.0f}%), "
            f"{self.failed} failed",
        ]
        if self.outcomes:
            detail = ", ".join(
                f"{value}={n}" for value, n in sorted(self.outcomes.items())
            )
            lines.append(f"  outcomes: {detail}")
        lines.append(
            f"  cache: {self.cache_hits} hit(s) / {self.cache_misses} "
            f"miss(es) ({self.cache_hit_rate * 100:.0f}%), "
            f"{self.stale_rebinds} stale rebind(s), "
            f"{self.baseline_plans} baseline plan(s)"
        )
        lines.append(
            f"  planner: {self.retries} retr(ies), "
            f"{self.planner_failures} failure(s); breaker "
            f"{self.breaker_trips} trip(s), {self.breaker_flaps} flap(s); "
            f"chaos {self.chaos_slowdowns} slow / {self.chaos_crashes} "
            f"crash / {self.chaos_poisoned} poison"
        )
        if self.fleet_gpus:
            lines.append(
                f"  fleet: {self.fleet_servers} server(s) / "
                f"{self.fleet_gpus} GPUs; {self.fleet_placements} "
                f"placement(s) ({self.fleet_identity} identity, "
                f"{self.fleet_partitioned} partitioned, "
                f"{self.fleet_timesliced} time-sliced), "
                f"{self.fleet_certified} certified / "
                f"{self.fleet_rejections} rejected; utilization "
                f"{self.fleet_utilization * 100:.0f}% "
                f"(peak {self.fleet_peak_occupancy * 100:.0f}%)"
            )
        lines.append(
            f"  latency: p50 {self.p50_latency:.3f}s, "
            f"p99 {self.p99_latency:.3f}s; peak queue "
            f"{self.peak_queue_depth}; makespan {self.makespan:.3f}s"
            + (f"; {self.runs_executed} run(s), "
               f"{self.run_virtual_seconds:.3f}s simulated"
               if self.runs_executed else "")
        )
        return "\n".join(lines)
