"""Service-level chaos: seeded faults against the planning daemon.

Mirrors :mod:`repro.faults`'s discipline at the service layer: a frozen
spec of *rates*, bound to a seed, answering every "does this go wrong?"
question with a stateless :func:`repro.common.rng.unit` draw keyed on
``(seed, kind, request id, attempt)`` -- order-independent, so a chaos
storm is bit-reproducible from its seed no matter how the simulator
interleaves workers.

Three service fault classes:

- **slow planner** -- a planning attempt takes ``slow_factor`` times its
  nominal virtual cost (GC pause, noisy neighbor on the planner host);
  drawn per attempt, so retries may escape it;
- **crashed planner** -- a planning attempt dies after its work was
  spent (worker OOM, segfault); retried with backoff until the budget
  or deadline runs out;
- **poisoned request** -- the request itself is malformed in a way only
  planning-time validation catches; resolves FAILED with a typed reason
  and, crucially, does *not* count against the circuit breaker (a bad
  request is the client's fault, not the planner's).

:meth:`ServiceChaosSpec.from_fault_spec` maps a runtime
:class:`~repro.faults.plan.FaultSpec` onto these rates so one chaos
intensity knob drives both layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.common.rng import unit
from repro.faults.plan import FaultSpec

_RATES = ("slow_rate", "crash_rate", "poison_rate")


@dataclass(frozen=True)
class ServiceChaosSpec:
    """Rates and magnitudes for service-level faults.  Rates in [0, 1]."""

    #: probability one planning attempt runs slow
    slow_rate: float = 0.0
    #: virtual-cost multiplier of a slow attempt
    slow_factor: float = 4.0
    #: probability one planning attempt crashes after doing its work
    crash_rate: float = 0.0
    #: probability a request is poisoned (malformed payload)
    poison_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATES:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.slow_factor < 1.0:
            raise ValueError(
                f"slow_factor must be >= 1, got {self.slow_factor}"
            )

    @property
    def any_enabled(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in _RATES)

    @classmethod
    def none(cls) -> "ServiceChaosSpec":
        return cls()

    @classmethod
    def chaos(cls, intensity: float = 1.0) -> "ServiceChaosSpec":
        """The standard service chaos mix, scaled like
        :meth:`repro.faults.plan.FaultSpec.chaos`."""
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        clamp = lambda r: min(1.0, r * intensity)  # noqa: E731
        return cls(
            slow_rate=clamp(0.15),
            slow_factor=1.0 + 3.0 * max(intensity, 0.1),
            crash_rate=clamp(0.10),
            poison_rate=clamp(0.02),
        )

    @classmethod
    def from_fault_spec(cls, spec: FaultSpec) -> "ServiceChaosSpec":
        """Project runtime fault rates onto the service layer: straggler
        GPUs -> slow planners, task crashes -> crashed planner attempts,
        transfer faults -> poisoned requests."""
        return cls(
            slow_rate=spec.gpu_slowdown_rate,
            slow_factor=max(1.0, spec.gpu_slowdown_factor),
            crash_rate=spec.task_crash_rate,
            poison_rate=spec.transfer_fault_rate,
        )

    def describe(self) -> str:
        if not self.any_enabled:
            return "ServiceChaosSpec(off)"
        return (
            f"ServiceChaosSpec(slow={self.slow_rate:g}"
            f"x{self.slow_factor:g}, crash={self.crash_rate:g}, "
            f"poison={self.poison_rate:g})"
        )


class ServiceFaultPlan:
    """Seeded oracle for service fault decisions (stateless draws)."""

    def __init__(self, spec: Optional[ServiceChaosSpec] = None,
                 seed: int = 0):
        self.spec = spec if spec is not None else ServiceChaosSpec.none()
        self.seed = seed

    @property
    def enabled(self) -> bool:
        return self.spec.any_enabled

    def poisoned(self, rid: int) -> bool:
        """Is request ``rid`` malformed?  A per-request property."""
        return unit(self.seed, "svc-poison", rid) < self.spec.poison_rate

    def slowdown(self, rid: int, attempt: int) -> float:
        """Virtual-cost multiplier for planning attempt ``attempt``."""
        if unit(self.seed, "svc-slow", rid, attempt) < self.spec.slow_rate:
            return self.spec.slow_factor
        return 1.0

    def crash(self, rid: int, attempt: int) -> bool:
        """Does planning attempt ``attempt`` of ``rid`` crash?"""
        return unit(self.seed, "svc-crash", rid, attempt) < \
            self.spec.crash_rate

    def describe(self) -> str:
        return f"ServiceFaultPlan(seed={self.seed}, {self.spec.describe()})"


class ScriptedServiceFaultPlan(ServiceFaultPlan):
    """Explicitly scripted service faults (for tests).

    ``poisoned_rids`` poisons those requests; ``crashes`` maps
    ``rid -> n`` (the first ``n`` attempts crash; ``-1`` = every
    attempt); ``slowdowns`` maps ``rid -> factor`` applied to every
    attempt.  Anything unscripted falls through to the seeded spec.
    """

    def __init__(self, poisoned_rids: Iterable[int] = (),
                 crashes: Optional[dict[int, int]] = None,
                 slowdowns: Optional[dict[int, float]] = None,
                 spec: Optional[ServiceChaosSpec] = None, seed: int = 0):
        super().__init__(spec, seed=seed)
        self.poisoned_rids = frozenset(poisoned_rids)
        self.crashes = dict(crashes or {})
        self.slowdowns = dict(slowdowns or {})

    @property
    def enabled(self) -> bool:
        return bool(
            self.poisoned_rids or self.crashes or self.slowdowns
            or self.spec.any_enabled
        )

    def poisoned(self, rid: int) -> bool:
        if rid in self.poisoned_rids:
            return True
        return super().poisoned(rid)

    def slowdown(self, rid: int, attempt: int) -> float:
        if rid in self.slowdowns:
            return self.slowdowns[rid]
        return super().slowdown(rid, attempt)

    def crash(self, rid: int, attempt: int) -> bool:
        if rid in self.crashes:
            budget = self.crashes[rid]
            return budget < 0 or attempt < budget
        return super().crash(rid, attempt)
