"""Planner-as-a-service: a hardened, deterministic planning daemon.

The rest of the package answers one question at a time ("plan this model
on this server"); this package turns the planner into a *service*: a
long-running daemon that accepts concurrent plan/run requests over an
async queue and keeps answering under chaos.  Hardening layers, outermost
first:

- **admission control** (:class:`PlannerService`): a bounded request
  queue and per-tenant quotas -- excess load is shed at the door with a
  typed reason, never by unbounded queueing;
- **deadlines** (:class:`~repro.service.request.PlanRequest.deadline`):
  every request carries a virtual-time budget; work that cannot finish
  inside it is abandoned *before* it is spent, and retries wait per the
  shared :class:`repro.common.backoff.BackoffPolicy` (seeded jitter, so
  retry storms decorrelate deterministically);
- **circuit breaker** (:class:`~repro.service.breaker.CircuitBreaker`):
  repeated planner timeouts/failures open the breaker; cooldowns grow on
  the same exponential schedule, so the breaker flaps less and less;
- **graceful degradation** (the ladder in
  :meth:`PlannerService._serve`): exact cached plan -> fresh plan ->
  near-spec cached plan relabeled onto the requested device range
  (:func:`repro.elastic.rebind.relabel_graph`) -> cheap baseline-scheme
  plan -> shed with a reason.  Every admitted request resolves
  terminally; nothing hangs, nothing is silently dropped;
- **fleet co-placement** (:mod:`repro.fleet`, optional): with a
  :class:`~repro.fleet.FleetPlacer` attached, a placement rung between
  admission and planning carves each job's devices out of a shared
  server fleet at the job's declared memory share; misses shed with a
  typed ``SHED_NO_CAPACITY`` and served plans are analyzer-certified
  against the tenant's partition;
- **chaos** (:mod:`repro.service.chaos`): seeded service-level faults
  (slow planners, crashed planner attempts, poisoned requests) drawn
  statelessly like every :mod:`repro.faults` decision, so an entire
  request storm is bit-reproducible from its seed.

Everything runs in virtual time on :class:`repro.sim.engine.Simulator`;
:class:`~repro.service.metrics.ServiceMetrics` aggregates the outcome
counts, queue depths and latency quantiles the acceptance checks pin.
"""

from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.cache import PlanCache, plan_key
from repro.service.chaos import (
    ServiceChaosSpec,
    ServiceFaultPlan,
    ScriptedServiceFaultPlan,
)
from repro.service.daemon import PlannerService, ServiceConfig
from repro.service.metrics import ServiceMetrics
from repro.service.request import Outcome, PlanRequest, RequestResult
from repro.service.workload import scripted_workload

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "Outcome",
    "PlanCache",
    "PlanRequest",
    "PlannerService",
    "RequestResult",
    "ScriptedServiceFaultPlan",
    "ServiceChaosSpec",
    "ServiceConfig",
    "ServiceFaultPlan",
    "ServiceMetrics",
    "plan_key",
    "scripted_workload",
]
