"""Seeded scripted workloads: deterministic request storms.

One seed pins the whole storm -- arrival times, tenants, model mix,
modes, minibatches -- via :func:`repro.common.rng.seeded_rng`, so the
acceptance storm ("two runs, bit-identical metrics") needs no fixture
files.  The mix leans on the tiny zoo models so a 500-request storm
plans real graphs in well under a minute of wall clock: the cache
collapses the storm onto a handful of unique plan keys, which is also
what exercises the cross-request cache path the service exists for.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.rng import seeded_rng
from repro.service.request import PlanRequest

#: Models cheap enough to fresh-plan inside a storm.
DEFAULT_MODELS = ("toy-transformer", "tiny-cnn")


def scripted_workload(
    n_requests: int,
    *,
    seed: int = 0,
    duration: float = 120.0,
    tenants: int = 4,
    models: Sequence[str] = DEFAULT_MODELS,
    modes: Sequence[str] = ("pp", "dp"),
    minibatches: Sequence[int] = (8, 16),
    gpus: Sequence[int] = (2,),
    deadline: Optional[float] = 45.0,
    execute_fraction: float = 0.0,
    shares: Sequence[float] = (1.0,),
) -> list[PlanRequest]:
    """Generate ``n_requests`` seeded requests over ``duration`` virtual
    seconds.

    Arrivals are uniform draws sorted ascending (a fixed-horizon Poisson
    process).  A drawn DP minibatch that does not divide across the
    drawn GPU count is demoted to PP -- the storm probes the service's
    robustness, not the planner's infeasibility handling (the chaos
    plan's poisoned requests cover malformed input).
    ``execute_fraction`` marks that fraction of requests as plan+run.

    ``shares`` is the memory-share mix for fleet storms (each request
    draws its declared per-GPU memory fraction from it).  The default
    ``(1.0,)`` draws nothing, keeping the request stream byte-identical
    to pre-fleet workloads -- the PR 7/8 storm baselines depend on that.
    """
    if n_requests < 0:
        raise ValueError(f"n_requests must be >= 0, got {n_requests}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants}")
    if not 0.0 <= execute_fraction <= 1.0:
        raise ValueError(
            f"execute_fraction must be in [0, 1], got {execute_fraction}"
        )
    rng = seeded_rng(seed, "service-workload")
    arrivals = sorted(rng.uniform(0.0, duration) for _ in range(n_requests))
    requests = []
    for rid, arrival in enumerate(arrivals):
        tenant = f"tenant{rng.randrange(tenants)}"
        model = rng.choice(list(models))
        mode = rng.choice(list(modes))
        minibatch = rng.choice(list(minibatches))
        n_gpus = rng.choice(list(gpus))
        execute = rng.random() < execute_fraction
        share = 1.0
        if tuple(shares) != (1.0,):
            share = rng.choice(list(shares))
        if mode == "dp" and minibatch % n_gpus != 0:
            mode = "pp"
        requests.append(PlanRequest(
            rid=rid,
            tenant=tenant,
            model=model,
            minibatch=minibatch,
            mode=mode,
            gpus=n_gpus,
            arrival=arrival,
            deadline=deadline,
            execute=execute,
            memory_share=share,
        ))
    return requests
