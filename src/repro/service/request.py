"""Service request/response records and the terminal-outcome taxonomy.

Every request the service admits (or refuses) resolves to exactly one
:class:`Outcome`; the acceptance criterion "every request terminally
resolved (served/degraded/shed with reason)" is checked over these.
Kept import-light (dataclasses + enum only) so tests and tooling can
consume results without pulling in the daemon.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class Outcome(enum.Enum):
    """How one request terminated.  ``group`` buckets for reporting."""

    #: planner ran and produced a plan for exactly this request
    SERVED_FRESH = "served_fresh"
    #: content-addressed cache hit: same model/server/options fingerprint
    SERVED_CACHED = "served_cached"
    #: near-spec cached plan relabeled onto the requested device range
    DEGRADED_STALE = "degraded_stale"
    #: cheap baseline-scheme plan (the last rung before shedding)
    DEGRADED_BASELINE = "degraded_baseline"
    #: load shed at admission: the bounded queue was full
    SHED_QUEUE_FULL = "shed_queue_full"
    #: load shed at admission: the tenant exceeded its quota
    SHED_QUOTA = "shed_quota"
    #: breaker open / planner unavailable and no degraded rung fit
    SHED_BREAKER = "shed_breaker"
    #: fleet placement failed: no server can host the job's devices at
    #: its memory share, or the analyzer rejected the carved partition
    SHED_NO_CAPACITY = "shed_no_capacity"
    #: the virtual deadline expired before any rung could finish
    TIMED_OUT = "timed_out"
    #: chaos-poisoned (malformed) request, rejected with a typed error
    FAILED_POISONED = "failed_poisoned"

    @property
    def group(self) -> str:
        """``served`` | ``degraded`` | ``shed`` | ``failed``."""
        return _GROUPS[self]

    @property
    def carries_plan(self) -> bool:
        """True when the result hands the caller a usable plan."""
        return self.group in ("served", "degraded")


_GROUPS = {
    Outcome.SERVED_FRESH: "served",
    Outcome.SERVED_CACHED: "served",
    Outcome.DEGRADED_STALE: "degraded",
    Outcome.DEGRADED_BASELINE: "degraded",
    Outcome.SHED_QUEUE_FULL: "shed",
    Outcome.SHED_QUOTA: "shed",
    Outcome.SHED_BREAKER: "shed",
    Outcome.SHED_NO_CAPACITY: "shed",
    Outcome.TIMED_OUT: "shed",
    Outcome.FAILED_POISONED: "failed",
}


@dataclass(frozen=True)
class PlanRequest:
    """One planning (or plan+run) request submitted to the service.

    ``deadline`` is a *relative* virtual-time budget measured from
    ``arrival``; ``None`` falls back to the service's default.
    ``execute`` asks the service to also run one simulated training
    iteration of the plan it serves (degraded plans downgrade to
    plan-only -- that is part of the degradation contract).
    ``memory_share`` is the per-GPU memory fraction the job declares it
    needs (Synergy-style resource sensitivity); a fleet-backed service
    carves exactly that partition, letting jobs with share < 1 share
    GPUs with other tenants.  Ignored without a fleet.
    """

    rid: int
    tenant: str
    model: str
    minibatch: int
    mode: str = "pp"
    gpus: int = 2
    arrival: float = 0.0
    deadline: Optional[float] = None
    execute: bool = False
    memory_share: float = 1.0

    def __post_init__(self) -> None:
        if self.minibatch < 1:
            raise ValueError(f"minibatch must be >= 1, got {self.minibatch}")
        if self.gpus < 1:
            raise ValueError(f"gpus must be >= 1, got {self.gpus}")
        if self.mode not in ("pp", "dp"):
            raise ValueError(f"mode must be 'pp' or 'dp', got {self.mode!r}")
        if self.arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        if not 0.0 < self.memory_share <= 1.0:
            raise ValueError(
                f"memory_share must be in (0, 1], got {self.memory_share}"
            )


@dataclass(frozen=True)
class RequestResult:
    """The terminal resolution of one request.

    ``latency`` is arrival -> resolution in virtual seconds; ``wait`` is
    the queued portion of it.  ``plan`` (when :attr:`Outcome.
    carries_plan`) is the served plan object -- a
    :class:`~repro.core.harmony.HarmonyPlan`, a relabeled stale plan, or
    a :class:`~repro.baselines.base.BaselinePlan` -- excluded from
    equality so results stay comparable records.
    """

    request: PlanRequest
    outcome: Outcome
    detail: str = ""
    resolved_at: float = 0.0
    latency: float = 0.0
    wait: float = 0.0
    attempts: int = 0
    plan_key: str = ""
    plan: Optional[Any] = field(default=None, compare=False, repr=False)
    #: virtual seconds of simulated training executed (run requests)
    run_seconds: float = 0.0

    @property
    def terminal(self) -> bool:
        return True  # every constructed result is terminal by definition

    def describe(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return (
            f"req{self.request.rid} [{self.request.tenant}] "
            f"{self.request.model}/{self.request.mode}"
            f"x{self.request.gpus} mb{self.request.minibatch}: "
            f"{self.outcome.value}{extra}, latency {self.latency:.3f}s "
            f"(queued {self.wait:.3f}s)"
        )
