"""Circuit breaker around the planner/search path.

Classic three-state machine, driven entirely by the caller's virtual
clock (no wall time anywhere):

- **CLOSED** -- requests flow; ``threshold`` *consecutive* failures trip
  the breaker;
- **OPEN** -- fresh planning is refused (callers fall down the
  degradation ladder) until the cooldown expires;
- **HALF_OPEN** -- exactly one probe attempt is admitted; success closes
  the breaker, failure re-opens it (*a flap*) with a longer cooldown.

Cooldowns come from the shared
:class:`repro.common.backoff.BackoffPolicy`: each consecutive trip
without an intervening close uses the next exponent, so open intervals
are **non-decreasing** while the fault persists -- the breaker flaps at
a monotonically non-increasing rate, which the storm acceptance test
asserts via :attr:`open_intervals`.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.common.backoff import BackoffPolicy

#: Default cooldown schedule: 4s, 8s, ... capped at 120s virtual.
DEFAULT_COOLDOWN = BackoffPolicy(max_retries=6, base=4.0, factor=2.0,
                                 cap=120.0)


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-counting breaker with exponentially growing cooldowns."""

    def __init__(self, threshold: int = 3,
                 cooldown: Optional[BackoffPolicy] = None,
                 name: str = "planner"):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown if cooldown is not None else DEFAULT_COOLDOWN
        self.name = name
        self.state = BreakerState.CLOSED
        self._failures = 0        # consecutive failures while CLOSED
        self._level = 0           # consecutive trips without a full close
        self._open_until = 0.0
        self._probing = False     # a HALF_OPEN probe is in flight
        #: lifetime counters / histories (tests pin monotonicity on these)
        self.trips = 0
        self.flaps = 0
        self.open_intervals: list[float] = []
        self.transitions: list[tuple[float, str]] = []

    # -- queries -----------------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May a fresh planning attempt start at virtual time ``now``?

        In OPEN state an expired cooldown moves to HALF_OPEN; the first
        ``allow`` in HALF_OPEN admits the single probe and subsequent
        calls refuse until the probe reports back.
        """
        if self.state is BreakerState.OPEN:
            if now < self._open_until:
                return False
            self._move(BreakerState.HALF_OPEN, now)
        if self.state is BreakerState.HALF_OPEN:
            if self._probing:
                return False
            self._probing = True
            return True
        return True

    # -- reports -----------------------------------------------------------------

    def record_success(self, now: float) -> None:
        """A planning attempt finished cleanly."""
        self._failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._probing = False
            self._level = 0  # a full close resets the cooldown schedule
            self._move(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        """A planning attempt failed or timed out terminally."""
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: re-open with the next (longer) cooldown.
            self._probing = False
            self.flaps += 1
            self._trip(now)
            return
        if self.state is BreakerState.CLOSED:
            self._failures += 1
            if self._failures >= self.threshold:
                self._trip(now)
        # OPEN: callers should not be attempting; ignore defensively.

    # -- internals ---------------------------------------------------------------

    def _trip(self, now: float) -> None:
        self.trips += 1
        exponent = min(self._level, self.cooldown.max_retries)
        interval = self.cooldown.delay(exponent, "breaker", self.name)
        self._level += 1
        self._failures = 0
        self._open_until = now + interval
        self.open_intervals.append(interval)
        self._move(BreakerState.OPEN, now)

    def _move(self, state: BreakerState, now: float) -> None:
        self.state = state
        self.transitions.append((now, state.value))

    def describe(self) -> str:
        return (
            f"breaker[{self.name}] {self.state.value}: "
            f"{self.trips} trip(s), {self.flaps} flap(s), "
            f"level {self._level}"
        )
