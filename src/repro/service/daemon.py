"""The planning daemon: admission -> queue -> workers -> degradation.

:class:`PlannerService` runs a pool of worker processes on the discrete-
event simulator (:mod:`repro.sim.engine`): requests arrive on a seeded
schedule, pass admission control (tenant quota, bounded queue), wait in
FIFO order, and are served by the first free worker.  All *timing* is
virtual and deterministic; the *plans themselves* are real -- a cache
miss runs the actual Decomposer/Profiler/Scheduler stack (wall clock,
memoized per content key), so a served plan is exactly what
``repro plan`` would print.

With a :class:`~repro.fleet.FleetPlacer` attached, a placement rung runs
between admission and planning: the request's logical devices are
reserved on the shared fleet at the request's declared memory share
(identity / partition / time-slice, per the placer's ladder).  A miss is
a typed :attr:`~repro.service.request.Outcome.SHED_NO_CAPACITY`; a hit
holds the carved capacity until the request resolves, and served plans
are re-certified by the analyzer against the tenant's partition before
they count as served (degraded plans are plan-only and skip
certification -- they carry no execution promise).

Serving walks the degradation ladder, cheapest-and-best first:

1. **exact cache hit** -- the content-addressed key matches a plan
   served before (any tenant, any time): serve it for ``cache_cost``;
2. **fresh plan** -- if the circuit breaker admits it: nominal virtual
   cost scaled by the model's depth, inflated by chaos slowdowns,
   retried with seeded-jitter backoff after chaos crashes.  An attempt
   that cannot finish inside the request's deadline is abandoned
   *before* the time is spent and counts as a planner timeout (these
   trip the breaker, exactly like crashes);
3. **stale/near-spec plan** -- a cached plan of the same workload family
   on fewer devices, embedded into the requested device range via
   :meth:`repro.virt.DeviceBinding.embed` (late binding makes the
   schedule valid under the new labeling);
4. **baseline plan** -- a :class:`~repro.baselines.GpipeSwapPlanner`
   schedule: pessimistic but always plannable;
5. **shed** -- with a typed reason (deadline expired, or breaker open
   with degradation disabled/exhausted).

Every admitted request terminates in exactly one
:class:`~repro.service.request.Outcome`; the simulator's unhandled-
failure guarantee means a bug here surfaces as a typed exception, never
a hang or a silently dropped request.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Any, Callable, Generator, Optional

from repro.common.backoff import BackoffPolicy
from repro.common.errors import ScheduleAnalysisError, SimulationError
from repro.fleet.placer import FleetPlacer, FleetReservation
from repro.core.harmony import Harmony, HarmonyOptions, HarmonyPlan
from repro.hardware.server import ServerSpec
from repro.models.zoo import build_model
from repro.service.breaker import CircuitBreaker, DEFAULT_COOLDOWN
from repro.service.cache import PlanCache, family_key, plan_key
from repro.service.chaos import ServiceFaultPlan
from repro.service.metrics import ServiceMetrics
from repro.service.request import Outcome, PlanRequest, RequestResult
from repro.sim.engine import SimEvent, Simulator
from repro.virt.devices import DeviceBinding


def _default_server_factory(n_gpus: int) -> ServerSpec:
    from repro.experiments.common import server_for

    return server_for(n_gpus)


@dataclass(frozen=True)
class ServiceConfig:
    """Every service tunable; defaults give a hardened 2-worker daemon."""

    #: concurrent planner workers
    workers: int = 2
    #: waiting requests beyond this are shed (bounded backpressure)
    queue_limit: int = 16
    #: unresolved requests (queued + in service) per tenant; 0 = no quota
    tenant_quota: int = 8
    #: virtual budget for requests that carry no deadline
    default_deadline: float = 30.0
    #: nominal virtual seconds of planner work per fresh plan (scaled by
    #: model depth; chaos slowdowns multiply it further)
    plan_cost: float = 2.0
    #: virtual seconds to serve an exact cache hit
    cache_cost: float = 0.02
    #: virtual seconds to relabel + serve a near-spec stale plan
    stale_cost: float = 0.10
    #: virtual seconds to produce + serve the baseline plan
    baseline_cost: float = 0.50
    #: virtual seconds to detect and reject a poisoned request
    detect_cost: float = 0.01
    #: virtual seconds for a fleet placement decision (fleet mode only)
    place_cost: float = 0.05
    #: retry schedule for crashed planner attempts (seeded jitter
    #: decorrelates a storm of retrying requests)
    retry: BackoffPolicy = BackoffPolicy(
        max_retries=2, base=0.5, factor=2.0, jitter=0.25, cap=4.0
    )
    #: consecutive planner failures/timeouts that trip the breaker
    breaker_threshold: int = 3
    #: breaker cooldown schedule (exponential -> non-increasing flaps)
    breaker_cooldown: BackoffPolicy = DEFAULT_COOLDOWN
    #: False turns rungs 3-4 off: breaker-open misses shed immediately
    degradation: bool = True
    #: plan-cache capacity (None = unbounded)
    cache_capacity: Optional[int] = 64
    #: simulator watchdog: callbacks before a stuck service aborts
    max_steps: int = 2_000_000

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.tenant_quota < 0:
            raise ValueError(
                f"tenant_quota must be >= 0, got {self.tenant_quota}"
            )
        if self.default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be > 0, got {self.default_deadline}"
            )
        for name in ("plan_cost", "cache_cost", "stale_cost",
                     "baseline_cost", "detect_cost", "place_cost"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )


@dataclass(frozen=True)
class StalePlan:
    """A near-spec cached plan rebound onto the requested device range."""

    source: HarmonyPlan = field(repr=False)
    graph: Any = field(repr=False)
    source_gpus: int = 0
    gpus: int = 0


_EPS = 1e-9


class PlannerService:
    """The hardened planning daemon (see module docstring)."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        options: Optional[HarmonyOptions] = None,
        chaos: Optional[ServiceFaultPlan] = None,
        trace: Optional[Any] = None,
        server_factory: Callable[[int], ServerSpec] = _default_server_factory,
        seed: int = 0,
        fleet: Optional[FleetPlacer] = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.options = options if options is not None else HarmonyOptions()
        self.chaos = chaos if chaos is not None else ServiceFaultPlan()
        self.seed = seed
        self.server_factory = server_factory
        self.sim = Simulator()
        self.sim.trace = trace
        self.trace = trace
        retry = self.config.retry
        if retry.jitter > 0.0 and retry.seed == 0 and seed != 0:
            # Bind the service seed into the retry jitter unless the
            # config pinned its own; labels still decorrelate requests.
            retry = replace(retry, seed=seed)
        self.retry = retry
        self.cache = PlanCache(self.config.cache_capacity)
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        self.metrics = ServiceMetrics()
        self.results: list[RequestResult] = []
        self._queue: deque[tuple[PlanRequest, float]] = deque()
        self._wakeup: SimEvent = self.sim.event("svc.wakeup")
        self._remaining = 0
        self._tenant_load: dict[str, int] = {}
        self._servers: dict[int, ServerSpec] = {}
        #: plan key -> the Harmony that built it (for run requests)
        self._harmonys: dict[str, Harmony] = {}
        #: plan key -> memoized simulated iteration seconds
        self._run_seconds: dict[str, float] = {}
        #: (model fp, gpus, minibatch) -> memoized baseline plan
        self._baselines: dict[tuple, Any] = {}
        self.fleet = fleet
        #: rid -> (live reservation, virtual placement time)
        self._reservations: dict[int, tuple[FleetReservation, float]] = {}
        #: (plan key, width, share, n_logical) -> certified bound plan
        #: (None = analyzer rejected that placement shape)
        self.fleet_bounds: dict[tuple, Optional[Any]] = {}
        #: rid -> its reservation, kept after release for reporting
        self.fleet_placed: dict[int, FleetReservation] = {}
        self._fleet_last = 0.0

    # -- public API --------------------------------------------------------------

    def run(self, requests: list[PlanRequest]) -> list[RequestResult]:
        """Serve ``requests`` to terminal resolution; returns results by
        request id.  Raises :class:`SimulationError` if any request
        fails to resolve (the watchdog makes that a loud failure)."""
        ordered = sorted(requests, key=lambda r: (r.arrival, r.rid))
        self._remaining = len(ordered)
        if ordered:
            self.sim.process(self._arrivals(ordered), name="svc.arrivals")
            for wid in range(self.config.workers):
                self.sim.process(self._worker(wid), name=f"svc.worker{wid}")
        self.sim.run(max_steps=self.config.max_steps)
        if len(self.results) != len(ordered):
            raise SimulationError(
                f"service run ended with {len(ordered) - len(self.results)} "
                f"request(s) unresolved"
            )
        self.metrics.cache_hits = self.cache.hits
        self.metrics.cache_misses = self.cache.misses
        self.metrics.breaker_trips = self.breaker.trips
        self.metrics.breaker_flaps = self.breaker.flaps
        if self.fleet is not None:
            self._fleet_tick(self.sim.now)
            self.metrics.fleet_servers = self.fleet.n_servers
            self.metrics.fleet_gpus = self.fleet.total_gpus
        return sorted(self.results, key=lambda r: r.request.rid)

    def run_metrics(self) -> "Any":
        """The service run as a :class:`~repro.runtime.metrics.RunMetrics`
        (throughput = requests per virtual second over the makespan),
        with :attr:`~repro.runtime.metrics.RunMetrics.service` attached
        so ``describe()`` folds the service section in."""
        from repro.runtime.metrics import RunMetrics

        metrics = RunMetrics(
            mode="service",
            minibatch=self.metrics.requests,
            iteration_time=self.metrics.makespan,
        )
        metrics.service = self.metrics
        return metrics

    # -- simulation processes ----------------------------------------------------

    def _arrivals(self, ordered: list[PlanRequest]) -> Generator:
        for request in ordered:
            delay = request.arrival - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self._submit(request)

    def _worker(self, wid: int) -> Generator:
        while True:
            if not self._queue:
                if self._remaining <= 0:
                    return
                yield self._wakeup
                continue
            request, enqueued = self._queue.popleft()
            yield from self._serve(wid, request, enqueued)

    # -- admission ---------------------------------------------------------------

    def _submit(self, request: PlanRequest) -> None:
        self.metrics.requests += 1
        now = self.sim.now
        if self.trace is not None:
            self.trace.instant(
                "service", f"arrive req{request.rid}", now,
                lane="service", tenant=request.tenant,
            )
        quota = self.config.tenant_quota
        if quota and self._tenant_load.get(request.tenant, 0) >= quota:
            self._resolve(
                request, Outcome.SHED_QUOTA,
                detail=f"tenant {request.tenant} at quota {quota}",
                admitted=False,
            )
            return
        if len(self._queue) >= self.config.queue_limit:
            self._resolve(
                request, Outcome.SHED_QUEUE_FULL,
                detail=f"queue at limit {self.config.queue_limit}",
                admitted=False,
            )
            return
        self.metrics.admitted += 1
        self._tenant_load[request.tenant] = \
            self._tenant_load.get(request.tenant, 0) + 1
        self._queue.append((request, now))
        self.metrics.peak_queue_depth = max(
            self.metrics.peak_queue_depth, len(self._queue)
        )
        self._wake()

    def _wake(self) -> None:
        fired, self._wakeup = self._wakeup, self.sim.event("svc.wakeup")
        fired.succeed()

    # -- serving -----------------------------------------------------------------

    def _serve(self, wid: int, request: PlanRequest,
               enqueued: float) -> Generator:
        started = self.sim.now
        wait = started - enqueued
        budget = (request.deadline if request.deadline is not None
                  else self.config.default_deadline)
        deadline = request.arrival + budget

        def fits(cost: float) -> bool:
            return self.sim.now + cost <= deadline + _EPS

        # Poisoned / malformed requests: cheap detection, typed failure,
        # no breaker involvement (the planner did nothing wrong).
        if self.chaos.poisoned(request.rid):
            if self.config.detect_cost > 0:
                yield self.sim.timeout(self.config.detect_cost)
            self.metrics.chaos_poisoned += 1
            self._resolve(
                request, Outcome.FAILED_POISONED,
                detail="malformed request rejected at validation",
                wait=wait,
            )
            return
        try:
            model = build_model(request.model)
        except (KeyError, ValueError) as exc:
            if self.config.detect_cost > 0:
                yield self.sim.timeout(self.config.detect_cost)
            self._resolve(
                request, Outcome.FAILED_POISONED, detail=str(exc), wait=wait,
            )
            return
        # Fleet rung: carve the job's devices out of the shared fleet
        # before any planning happens.  The reservation is held until
        # the request resolves (released in _resolve); a placement miss
        # is a typed shed, not a queue hang.
        if self.fleet is not None:
            if self.config.place_cost > 0:
                yield self.sim.timeout(self.config.place_cost)
            reservation = self.fleet.reserve(
                request.tenant, request.gpus,
                share=Fraction(request.memory_share),
            )
            if reservation is None:
                self._resolve(
                    request, Outcome.SHED_NO_CAPACITY,
                    detail=f"no server can host {request.gpus} device(s) "
                           f"at share {request.memory_share:g}",
                    wait=wait,
                )
                return
            self._place(request, reservation)

        server = self._server(request.gpus)
        options = replace(self.options, mode=request.mode)
        key = plan_key(model, server, request.minibatch, options)
        family = family_key(model, request.minibatch, options)

        # Rung 1: exact content-addressed cache hit.
        plan = self.cache.get(key)
        if plan is not None:
            if fits(self.config.cache_cost):
                yield self.sim.timeout(self.config.cache_cost)
                yield from self._finish(
                    request, Outcome.SERVED_CACHED, plan=plan, key=key,
                    wait=wait, deadline=deadline,
                )
            else:
                self._resolve(
                    request, Outcome.TIMED_OUT,
                    detail="deadline expired before the cached plan "
                           "could be served",
                    wait=wait, plan_key=key,
                )
            return

        # Rung 2: fresh planning, behind the breaker.
        attempts = 0
        if self.breaker.allow(self.sim.now):
            done, attempts = yield from self._plan_fresh(
                request, model, server, options, key, family, deadline, wait,
            )
            if done:
                return
        elif self.trace is not None:
            self.trace.instant(
                "service", f"breaker_denied req{request.rid}", self.sim.now,
                lane="service",
            )

        # Rungs 3-4: degraded service.
        if self.config.degradation:
            near = self.cache.near(family, request.gpus, exclude=key)
            if near is not None and fits(self.config.stale_cost):
                source_gpus, source_key, source = near
                # The cached plan's logical devices embed in-place into
                # the request's (larger or equal) physical device range;
                # late binding makes the graph rewrite purely mechanical.
                embedding = DeviceBinding.embed(
                    source.graph.n_devices, request.gpus
                )
                graph = embedding.apply(source.graph)
                yield self.sim.timeout(self.config.stale_cost)
                self.metrics.stale_rebinds += 1
                stale = StalePlan(
                    source=source, graph=graph,
                    source_gpus=source_gpus, gpus=request.gpus,
                )
                self._resolve(
                    request, Outcome.DEGRADED_STALE,
                    detail=f"reused {source_gpus}-gpu plan relabeled onto "
                           f"{request.gpus} device(s)",
                    wait=wait, plan=stale, plan_key=source_key,
                    attempts=attempts,
                )
                return
            if fits(self.config.baseline_cost):
                baseline = self._baseline_plan(
                    model, server, request.minibatch
                )
                if baseline is not None:
                    yield self.sim.timeout(self.config.baseline_cost)
                    self.metrics.baseline_plans += 1
                    self._resolve(
                        request, Outcome.DEGRADED_BASELINE,
                        detail="gpipe-swap baseline plan",
                        wait=wait, plan=baseline, attempts=attempts,
                    )
                    return

        # Rung 5: shed, with the honest reason.  The deadline is the
        # binding constraint when it has expired outright, or when the
        # cheapest degraded rung no longer fits the remaining budget;
        # otherwise the planner (breaker open, crashes, no plannable
        # rung) is what failed the request.
        cheapest = min(self.config.stale_cost, self.config.baseline_cost)
        deadline_bound = self.sim.now + _EPS >= deadline or (
            self.config.degradation and not fits(cheapest)
        )
        if deadline_bound:
            self._resolve(
                request, Outcome.TIMED_OUT,
                detail="deadline expired before any rung could serve",
                wait=wait, attempts=attempts,
            )
        else:
            self._resolve(
                request, Outcome.SHED_BREAKER,
                detail="planner unavailable and degraded rungs "
                       "exhausted or disabled",
                wait=wait, attempts=attempts,
            )

    def _plan_fresh(self, request: PlanRequest, model: Any,
                    server: ServerSpec, options: HarmonyOptions, key: str,
                    family: tuple, deadline: float,
                    wait: float) -> Generator:
        """Fresh planning with chaos, deadline checks and seeded-backoff
        retries.  Returns ``(resolved, attempts)``; ``resolved`` False
        means the caller should fall down the degradation ladder."""
        attempt = 0
        nominal = self._plan_cost(model)
        while True:
            factor = self.chaos.slowdown(request.rid, attempt)
            if factor > 1.0:
                self.metrics.chaos_slowdowns += 1
            duration = nominal * factor
            if self.sim.now + duration > deadline + _EPS:
                # Abandon before burning time we cannot afford: this is
                # the planner timing out from the request's view.
                self.metrics.planner_failures += 1
                self.breaker.record_failure(self.sim.now)
                if self.trace is not None:
                    self.trace.instant(
                        "service", f"planner_timeout req{request.rid}",
                        self.sim.now, lane="service", attempt=attempt,
                    )
                return False, attempt + 1
            yield self.sim.timeout(duration)
            if self.chaos.crash(request.rid, attempt):
                self.metrics.chaos_crashes += 1
                self.metrics.planner_failures += 1
                if self.trace is not None:
                    self.trace.instant(
                        "service", f"planner_crash req{request.rid}",
                        self.sim.now, lane="service", attempt=attempt,
                    )
                if self.retry.exhausted(attempt):
                    self.breaker.record_failure(self.sim.now)
                    return False, attempt + 1
                pause = self.retry.delay(attempt, "plan", request.rid)
                if self.sim.now + pause > deadline + _EPS:
                    self.breaker.record_failure(self.sim.now)
                    return False, attempt + 1
                self.metrics.retries += 1
                yield self.sim.timeout(pause)
                attempt += 1
                continue
            try:
                harmony = Harmony(
                    model, server, request.minibatch, options=options
                )
                plan = harmony.plan()
            except Exception:
                # Planner-side failure (infeasible config, scheduler
                # error): terminal for the fresh rung.
                self.metrics.planner_failures += 1
                self.breaker.record_failure(self.sim.now)
                return False, attempt + 1
            self.breaker.record_success(self.sim.now)
            self.cache.put(key, plan, family=family, n_gpus=request.gpus)
            self._harmonys[key] = harmony
            yield from self._finish(
                request, Outcome.SERVED_FRESH, plan=plan, key=key,
                wait=wait, deadline=deadline, attempts=attempt + 1,
            )
            return True, attempt + 1

    def _finish(self, request: PlanRequest, outcome: Outcome, *, plan: Any,
                key: str, wait: float, deadline: float,
                attempts: int = 0) -> Generator:
        """Resolve a served request, running one simulated iteration
        first for run requests (when it fits the deadline).

        Fleet mode gates serving on certification: the plan is bound
        onto the held reservation and re-proved by the analyzer against
        the tenant's memory partition (memoized per placement shape, so
        a storm pays each unique analysis once).  A rejected bind sheds
        with ``SHED_NO_CAPACITY`` -- the fleet cannot honestly host the
        job at its declared share."""
        if self.fleet is not None:
            held = self._reservations.get(request.rid)
            if held is not None:
                bound = self._certify(request, key, plan, held[0])
                if bound is None:
                    self.metrics.fleet_rejections += 1
                    self._resolve(
                        request, Outcome.SHED_NO_CAPACITY,
                        detail=f"analyzer rejected the carved partition "
                               f"(share {request.memory_share:g})",
                        wait=wait, plan_key=key, attempts=attempts,
                    )
                    return
                self.metrics.fleet_certified += 1
        detail = ""
        run_seconds = 0.0
        if request.execute:
            seconds = self._iteration_seconds(key, plan)
            if seconds > 0 and self.sim.now + seconds <= deadline + _EPS:
                yield self.sim.timeout(seconds)
                run_seconds = seconds
                self.metrics.runs_executed += 1
                self.metrics.run_virtual_seconds += seconds
                detail = f"ran 1 iteration ({seconds:.3f}s simulated)"
            else:
                detail = "run skipped (deadline)"
        self._resolve(
            request, outcome, detail=detail, wait=wait, plan=plan,
            plan_key=key, attempts=attempts, run_seconds=run_seconds,
        )

    # -- resolution --------------------------------------------------------------

    def _resolve(self, request: PlanRequest, outcome: Outcome, *,
                 detail: str = "", wait: float = 0.0,
                 plan: Optional[Any] = None, plan_key: str = "",
                 attempts: int = 0, admitted: bool = True,
                 run_seconds: float = 0.0) -> None:
        now = self.sim.now
        latency = now - request.arrival
        held = self._reservations.pop(request.rid, None)
        if held is not None and self.fleet is not None:
            reservation, placed_at = held
            self._fleet_tick(now)
            self.fleet.release(reservation)
            if self.trace is not None:
                self.trace.span(
                    "fleet", f"hold req{request.rid}", placed_at, now,
                    lane="fleet", tenant=request.tenant,
                    server=reservation.server, kind=reservation.kind,
                    devices=reservation.devices,
                )
        self.metrics.count(outcome)
        if outcome.carries_plan:
            self.metrics.latencies.append(latency)
        if admitted:
            load = self._tenant_load.get(request.tenant, 0)
            if load > 0:
                self._tenant_load[request.tenant] = load - 1
        self.metrics.makespan = max(self.metrics.makespan, now)
        self.results.append(RequestResult(
            request=request, outcome=outcome, detail=detail,
            resolved_at=now, latency=latency, wait=wait,
            attempts=attempts, plan_key=plan_key, plan=plan,
            run_seconds=run_seconds,
        ))
        if self.trace is not None:
            self.trace.span(
                "service", f"req{request.rid}", request.arrival, now,
                lane="service", outcome=outcome.value,
                tenant=request.tenant,
            )
        self._remaining -= 1
        if self._remaining <= 0:
            self._wake()

    # -- fleet placement ---------------------------------------------------------

    def _place(self, request: PlanRequest,
               reservation: FleetReservation) -> None:
        """Record a successful placement: accounting + trace instant."""
        assert self.fleet is not None
        now = self.sim.now
        self._fleet_tick(now)
        self._reservations[request.rid] = (reservation, now)
        self.fleet_placed[request.rid] = reservation
        self.metrics.fleet_placements += 1
        if reservation.kind == "identity":
            self.metrics.fleet_identity += 1
        elif reservation.kind == "partition":
            self.metrics.fleet_partitioned += 1
        else:
            self.metrics.fleet_timesliced += 1
        self.metrics.fleet_peak_occupancy = max(
            self.metrics.fleet_peak_occupancy,
            float(self.fleet.occupancy()),
        )
        if self.trace is not None:
            self.trace.instant(
                "fleet", f"place req{request.rid}", now, lane="fleet",
                tenant=request.tenant, server=reservation.server,
                kind=reservation.kind, devices=reservation.devices,
            )

    def _fleet_tick(self, now: float) -> None:
        """Advance the occupied-GPU-seconds integral to ``now``.  Must
        run *before* any occupancy change (the integrand is piecewise
        constant between placement events)."""
        assert self.fleet is not None
        dt = now - self._fleet_last
        if dt > 0:
            self.metrics.fleet_gpu_seconds += (
                float(self.fleet.occupancy()) * self.fleet.total_gpus * dt
            )
        self._fleet_last = now

    def _certify(self, request: PlanRequest, key: str, plan: Any,
                 reservation: FleetReservation) -> Optional[Any]:
        """Analyzer-certified bound plan for (plan, placement shape), or
        None when the partition cannot hold the schedule.  Memoized: the
        shape, not the request, determines the verdict."""
        assert self.fleet is not None
        shape = (key, len(reservation.devices), reservation.share,
                 reservation.n_logical)
        if shape in self.fleet_bounds:
            return self.fleet_bounds[shape]
        try:
            bound = self.fleet.bind(reservation, plan)
        except ScheduleAnalysisError:
            bound = None
        self.fleet_bounds[shape] = bound
        return bound

    # -- plan production ---------------------------------------------------------

    def _server(self, n_gpus: int) -> ServerSpec:
        server = self._servers.get(n_gpus)
        if server is None:
            server = self.server_factory(n_gpus)
            self._servers[n_gpus] = server
        return server

    def _plan_cost(self, model: Any) -> float:
        """Nominal virtual planning cost, scaled by model depth."""
        return self.config.plan_cost * (1.0 + model.n_layers / 32.0)

    def _baseline_plan(self, model: Any, server: ServerSpec,
                       minibatch: int) -> Optional[Any]:
        """Memoized GPipe-swap baseline plan (None if even the baseline
        cannot plan this request -- then the ladder sheds)."""
        from repro.service.cache import model_fingerprint

        key = (model_fingerprint(model), server.n_gpus, minibatch)
        if key in self._baselines:
            return self._baselines[key]
        from repro.baselines import GpipeSwapPlanner

        try:
            plan = GpipeSwapPlanner(model, server, minibatch).plan()
        except Exception:
            plan = None
        self._baselines[key] = plan
        return plan

    def _iteration_seconds(self, key: str, plan: Any) -> float:
        """Memoized simulated iteration time of a served plan (run
        requests).  The first run request per plan key pays one real
        simulated execution; later ones reuse its virtual duration."""
        if key in self._run_seconds:
            return self._run_seconds[key]
        harmony = self._harmonys.get(key)
        seconds = 0.0
        if harmony is not None:
            report = harmony.run(plan=plan)
            seconds = report.metrics.iteration_time
        self._run_seconds[key] = seconds
        return seconds
