"""A ZeRO-Infinity analog: sharded state streamed from host, CPU optimizer.

ZeRO-Infinity shards weights/gradients/optimizer state across workers and
host memory, streams each layer's weights in just before use, and offloads
the optimizer to the CPU.  Crucially -- the axis of the Section 5.3
comparison -- it schedules coarsely and lacks *input-batch grouping*:
every microbatch re-fetches every pack's weights, so its swap volume
scales with the microbatch count (``~3 m |W|`` per GPU versus Harmony
DP's ``3 |W|``) even though both offload the update to the CPU.

For a fair comparison the planner adopts Harmony's configuration
(microbatch size and recompute pack granularity), mirroring the paper's
methodology.

Host memory: ZeRO-Infinity keeps fp32 master state plus partition and
pinned staging buffers; we charge 25% overhead over the raw model state,
which reproduces Figure 15's out-of-memory at 40 B parameters on a 750 GB
host while Harmony (no overhead beyond state + stash) still trains.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.diagnostics import Waiver
from repro.baselines.base import BaselinePlan, BaselineScheme
from repro.core.config import Pack, microbatch_group
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind

HOST_OVERHEAD = 1.25

# The analyzer's pack-granularity double-buffer bound over-approximates
# ZeRO-Infinity's transfer engine, which prefetches layer by layer under
# an allocator watermark and never holds two whole packs.  Both the point
# check and its N = 1 parametric twin trip on that over-approximation, so
# both carry the same justification -- and because waivers are
# load-bearing (an unmatched waiver is an error), they die the moment the
# planner stops over-approximating.
_ENGINE_WATERMARK = (
    "the modeled pack-level double-buffer over-approximates ZeRO-"
    "Infinity's layer-by-layer watermark prefetch engine; the real peak "
    "stays under the allocator watermark"
)


class ZeroInfinityPlanner(BaselineScheme):
    """Plan and run the ZeRO-Infinity analog."""

    name = "zero-infinity"
    reactive = False  # ZeRO ships a pinned, overlapped transfer engine
    waivers = (
        Waiver("capacity/gpu", _ENGINE_WATERMARK),
        Waiver("parametric/gpu-unsafe", _ENGINE_WATERMARK),
    )

    def __init__(self, *args, packs: Optional[Sequence[Pack]] = None,
                 u_f: Optional[int] = None, u_b: Optional[int] = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self._packs = tuple(packs) if packs is not None else None
        self.u_f = u_f
        self.u_b = u_b

    def packs(self) -> tuple[Pack, ...]:
        """Recompute pack granularity; defaults to weight-sized chunks when
        no Harmony configuration is supplied."""
        if self._packs is not None:
            return self._packs
        from repro.baselines.dp_swap import layer_chunks

        chunks = layer_chunks(
            self.profiles, max_bytes=self.server.gpu.memory_bytes // 8
        )
        return tuple(Pack(first, last) for first, last in chunks)

    def plan(self) -> BaselinePlan:
        n = self.server.n_gpus
        if self.minibatch % n:
            raise ValueError("ZeRO minibatch must divide across GPUs")
        share = self.minibatch // n
        u_f = min(self.u_f or self.microbatch, share)
        u_b = min(self.u_b or self.microbatch, share)
        mbs_f = microbatch_group(share, u_f)
        mbs_b = microbatch_group(share, u_b)
        packs = self.packs()
        profiles = self.profiles
        graph = TaskGraph(mode=self.name, n_devices=n)
        last_bwd: dict[tuple[int, int], int] = {}

        for gpu in range(n):
            prev = None
            # Forward: every microbatch re-fetches every pack's weights.
            for i, size in enumerate(mbs_f):
                for pack in packs:
                    task = Task(
                        tid=len(graph.tasks), kind=TaskKind.FWD,
                        first_layer=pack.first, last_layer=pack.last,
                        device=gpu, microbatches=(size,),
                        label=f"F{pack}mb{i}@g{gpu}",
                    )
                    task.ins.append(Move(
                        tensor=TensorKind.W,
                        nbytes=profiles.pack_param_bytes(pack),
                        channel=Channel.SWAP, label=f"W{pack}",
                    ))
                    if prev is not None:
                        task.ins.append(Move(
                            tensor=TensorKind.DW, nbytes=0,
                            channel=Channel.LOCAL, src_task=prev,
                            label="order",
                        ))
                    if pack.first > 0:
                        task.outs.append(Move(
                            tensor=TensorKind.CKPT,
                            nbytes=profiles.boundary_in_bytes(pack, size),
                            channel=Channel.MSG, label="ckpt",
                        ))
                    task.resident_bytes = profiles.pack_fwd_memory(pack, size)
                    graph.add(task)
                    prev = task.tid
            # Backward: re-fetch again, rematerialize, push gradients out.
            for i in reversed(range(len(mbs_b))):
                size = mbs_b[i]
                for pack in reversed(packs):
                    task = Task(
                        tid=len(graph.tasks), kind=TaskKind.BWD,
                        first_layer=pack.first, last_layer=pack.last,
                        device=gpu, microbatches=(size,),
                        recompute=True,
                        label=f"B{pack}mb{i}@g{gpu}",
                    )
                    task.ins.append(Move(
                        tensor=TensorKind.W,
                        nbytes=profiles.pack_param_bytes(pack),
                        channel=Channel.SWAP, label=f"W{pack}",
                    ))
                    task.ins.append(Move(
                        tensor=TensorKind.CKPT,
                        nbytes=profiles.boundary_in_bytes(pack, size),
                        channel=Channel.SWAP, label="ckpt",
                    ))
                    if prev is not None:
                        task.ins.append(Move(
                            tensor=TensorKind.DW, nbytes=0,
                            channel=Channel.LOCAL, src_task=prev,
                            label="order",
                        ))
                    # Reduce-scatter to host: gradients leave per microbatch.
                    task.outs.append(Move(
                        tensor=TensorKind.DW,
                        nbytes=profiles.pack_param_bytes(pack),
                        channel=Channel.SWAP, label=f"dW{pack}",
                    ))
                    task.resident_bytes = profiles.pack_bwd_memory(pack, size)
                    graph.add(task)
                    prev = task.tid
                    last_bwd[(gpu, packs.index(pack))] = task.tid

        # CPU optimizer over the sharded state, one update per pack.
        for idx, pack in enumerate(packs):
            deps = [last_bwd[(g, idx)] for g in range(n)]
            task = Task(
                tid=len(graph.tasks), kind=TaskKind.UPD,
                first_layer=pack.first, last_layer=pack.last,
                device=idx % n, microbatches=(1,), on_cpu=True,
                compute_flops=profiles.pack_update_flops(pack),
                label=f"U{pack}",
            )
            for dep in deps:
                task.ins.append(Move(
                    tensor=TensorKind.DW, nbytes=0, channel=Channel.LOCAL,
                    src_task=dep, label=f"dep:b{dep}",
                ))
            graph.add(task)

        graph.validate()
        host_state = int(
            self.model.model_state_bytes * HOST_OVERHEAD
            + self.minibatch * self.model.sample_bytes
        )
        return BaselinePlan(
            scheme=self.name,
            model=self.model,
            server=self.server,
            minibatch=self.minibatch,
            microbatch=u_b,
            decomposed=self.decomposed,
            profiles=self.profiles,
            graph=graph,
            host_state_bytes=host_state,
            notes=f"{len(packs)} packs, {len(mbs_f)}F/{len(mbs_b)}B "
                  "microbatches/GPU, CPU optimizer",
        )
