"""Baseline training schemes with per-GPU memory virtualization.

The paper constructs its comparison points by augmenting standard
parallel-training schemes with IBM-LMS-style per-GPU swapping:

- :mod:`~repro.baselines.dp_swap` -- data parallelism + per-GPU swap
  (with gradient accumulation),
- :mod:`~repro.baselines.gpipe_swap` -- GPipe pipeline + per-GPU swap,
  with and without recomputation,
- :mod:`~repro.baselines.pipedream_2bw` -- PipeDream-2BW (1F1B, double
  weight versions) + per-GPU swap, with and without recomputation,
- :mod:`~repro.baselines.zero_infinity` -- a ZeRO-Infinity analog: sharded
  state streamed from host per layer pack per microbatch, CPU optimizer.

Each planner replays its schedule's tensor touches through the
:class:`~repro.memory.swap_manager.LruSwapManager` to derive swap volumes
(reproducing the repeated/unnecessary/unbalanced swaps of Section 2
mechanically, not by hand-coded formulas), then emits a task graph that
the same Runtime executes.
"""

from repro.baselines.base import BaselinePlan, BaselineScheme, run_baseline
from repro.baselines.dp_swap import DpSwapPlanner
from repro.baselines.gpipe_swap import GpipeSwapPlanner
from repro.baselines.pipedream_2bw import PipeDream2BWPlanner
from repro.baselines.zero_infinity import ZeroInfinityPlanner

__all__ = [
    "BaselinePlan",
    "BaselineScheme",
    "run_baseline",
    "DpSwapPlanner",
    "GpipeSwapPlanner",
    "PipeDream2BWPlanner",
    "ZeroInfinityPlanner",
]
