"""GP Swap: GPipe pipeline parallelism with per-GPU memory virtualization.

The model is split into N compute-balanced stages pinned one per GPU
(early binding); microbatches flow through all stages' forwards, then all
backwards, with a pipeline flush per iteration.  Stage state that exceeds
GPU memory is virtualized by the LMS replay, which exposes the paper's
*unbalanced swaps* (Section 2, item 4): without recomputation the head
stages stash activations for every in-flight microbatch, so their swap
load -- and hence the pipeline's bottleneck -- is far higher than the
tail's (Figure 2c).

``recompute=True`` gives the GP Swap (R) variant: stages checkpoint only
their input and rematerialize in the backward pass, trading compute for a
large reduction in stash traffic (the (R) bars of Figure 9).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselinePlan, BaselineScheme, LmsReplay
from repro.core.config import Pack, microbatch_group, packs_from_boundaries
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind
from repro.graph.layer import Phase


def compute_balanced_stages(profiles, n_stages: int) -> tuple[Pack, ...]:
    """Split layers into ``n_stages`` contiguous stages with near-equal
    total (forward + backward) compute -- how GPipe/PipeDream partition."""
    times = [
        profiles[i].time(Phase.FWD, 1) + profiles[i].time(Phase.BWD, 1)
        for i in range(len(profiles))
    ]
    prefix = np.cumsum(times)
    targets = np.arange(1, n_stages) * (prefix[-1] / n_stages)
    cuts = np.searchsorted(prefix, targets) + 1
    cuts = np.clip(cuts, 1, len(times) - 1)
    boundaries = [0] + sorted(set(int(c) for c in cuts))
    while len(boundaries) < n_stages:  # degenerate tiny models
        boundaries.append(boundaries[-1] + 1)
    return packs_from_boundaries(boundaries[:n_stages], len(times))


class GpipeSwapPlanner(BaselineScheme):
    """Plan and run GP Swap / GP Swap (R)."""

    name = "gp-swap"

    def __init__(self, *args, recompute: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.recompute = recompute
        if recompute:
            self.name = "gp-swap-r"

    def default_microbatch(self) -> int:
        """Pipelines need several microbatches per stage to fill (GPipe
        recommends m >= 4x the stage count), on top of the memory bound."""
        fit = super().default_microbatch()
        pipelined = max(1, self.minibatch // (4 * self.server.n_gpus))
        return min(fit, pipelined)

    # -- schedule -----------------------------------------------------------------

    def plan(self) -> BaselinePlan:
        n = self.server.n_gpus
        u = min(self.microbatch, self.minibatch)
        mbs = microbatch_group(self.minibatch, u)
        stages = compute_balanced_stages(self.profiles, n)
        capacity = self.server.gpu.memory_bytes
        profiles = self.profiles

        graph = TaskGraph(mode=self.name, n_devices=n, pageable_swaps=True)
        replays = [LmsReplay(capacity) for _ in range(n)]
        fwd_tid: dict[tuple[int, int], int] = {}
        bwd_tid: dict[tuple[int, int], int] = {}

        # Forward phase: stage by stage per microbatch (pipelined by deps).
        for i, size in enumerate(mbs):
            for s, stage in enumerate(stages):
                replay = replays[s]
                replay.begin_step()
                for layer in stage.layers:
                    replay.use(f"W:{layer}", profiles[layer].param_bytes)
                    if not self.recompute:
                        replay.produce(
                            f"stash:{layer}:{i}",
                            profiles[layer].saved_for_backward_bytes(size),
                        )
                if self.recompute:
                    replay.produce(
                        f"ckpt:{s}:{i}",
                        profiles.boundary_in_bytes(stage, size),
                    )
                swap_in, swap_out = replay.end_step()
                task = self._emit(
                    graph, TaskKind.FWD, s, stage, size, swap_in, swap_out,
                    label=f"F{s}mb{i}",
                )
                if s > 0:
                    boundary = profiles.boundary_in_bytes(stage, size)
                    task.ins.append(Move(
                        tensor=TensorKind.X,
                        nbytes=boundary,
                        channel=Channel.P2P,
                        peer=s - 1,
                        src_task=fwd_tid[(s - 1, i)],
                        label="act",
                    ))
                    task.resident_bytes += boundary
                fwd_tid[(s, i)] = task.tid

        # Backward phase (after the flush): reverse stages, reverse mbs.
        for i in reversed(range(len(mbs))):
            size = mbs[i]
            for s in reversed(range(n)):
                stage = stages[s]
                replay = replays[s]
                replay.begin_step()
                if self.recompute:
                    replay.use(
                        f"ckpt:{s}:{i}",
                        profiles.boundary_in_bytes(stage, size),
                    )
                    replay.drop(f"ckpt:{s}:{i}")
                for layer in reversed(list(stage.layers)):
                    replay.use(f"W:{layer}", profiles[layer].param_bytes)
                    if self.recompute:
                        replay.produce(
                            f"restash:{layer}",
                            profiles[layer].saved_for_backward_bytes(size),
                        )
                        replay.drop(f"restash:{layer}")
                    else:
                        replay.use(
                            f"stash:{layer}:{i}",
                            profiles[layer].saved_for_backward_bytes(size),
                        )
                        replay.drop(f"stash:{layer}:{i}")
                    replay.use(
                        f"dW:{layer}", profiles[layer].param_bytes, write=True
                    )
                swap_in, swap_out = replay.end_step()
                task = self._emit(
                    graph, TaskKind.BWD, s, stage, size, swap_in, swap_out,
                    label=f"B{s}mb{i}", recompute=self.recompute,
                )
                if s < n - 1:
                    boundary = profiles.boundary_out_bytes(stage, size)
                    task.ins.append(Move(
                        tensor=TensorKind.DY,
                        nbytes=boundary,
                        channel=Channel.P2P,
                        peer=s + 1,
                        src_task=bwd_tid[(s + 1, i)],
                        label="grad-act",
                    ))
                    task.resident_bytes += boundary
                bwd_tid[(s, i)] = task.tid

        # Per-stage weight update.
        slots = self.model.optimizer_slots
        for s, stage in enumerate(stages):
            replay = replays[s]
            replay.begin_step()
            for layer in stage.layers:
                replay.use(f"W:{layer}", profiles[layer].param_bytes, write=True)
                replay.use(f"dW:{layer}", profiles[layer].param_bytes)
                replay.use(
                    f"K:{layer}", profiles[layer].param_bytes * slots,
                    write=True,
                )
            for layer in stage.layers:
                replay.flush(f"W:{layer}")
                replay.flush(f"K:{layer}")
            swap_in, swap_out = replay.end_step()
            task = Task(
                tid=len(graph.tasks),
                kind=TaskKind.UPD,
                first_layer=stage.first,
                last_layer=stage.last,
                device=s,
                microbatches=(1,),
                label=f"U{s}",
            )
            if swap_in:
                task.ins.append(Move(
                    tensor=TensorKind.W, nbytes=swap_in, channel=Channel.SWAP,
                    label="lms-in",
                ))
            task.ins.append(Move(
                tensor=TensorKind.DW, nbytes=0, channel=Channel.LOCAL,
                src_task=bwd_tid[(s, 0)], label="order",
            ))
            if swap_out:
                task.outs.append(Move(
                    tensor=TensorKind.DW, nbytes=swap_out,
                    channel=Channel.SWAP, label="lms-out",
                ))
            task.resident_bytes = swap_in
            graph.add(task)

        graph.validate()
        host_state = (
            self.model.model_state_bytes
            + self.minibatch * self.model.sample_bytes
        )
        return BaselinePlan(
            scheme=self.name,
            model=self.model,
            server=self.server,
            minibatch=self.minibatch,
            microbatch=u,
            decomposed=self.decomposed,
            profiles=self.profiles,
            graph=graph,
            host_state_bytes=host_state,
            notes=f"{n} stages, {len(mbs)} microbatches, "
                  f"recompute={'on' if self.recompute else 'off'}",
        )

    def _emit(self, graph, kind, device, stage, size, swap_in, swap_out,
              label, recompute=False) -> Task:
        task = Task(
            tid=len(graph.tasks),
            kind=kind,
            first_layer=stage.first,
            last_layer=stage.last,
            device=device,
            microbatches=(size,),
            recompute=recompute,
            label=label,
        )
        if swap_in:
            task.ins.append(Move(
                tensor=TensorKind.W, nbytes=swap_in, channel=Channel.SWAP,
                label="lms-in",
            ))
        if swap_out:
            task.outs.append(Move(
                tensor=TensorKind.DW, nbytes=swap_out, channel=Channel.SWAP,
                label="lms-out",
            ))
        task.resident_bytes = swap_in
        graph.add(task)
        return task
