"""2BW Swap: PipeDream-2BW with per-GPU memory virtualization.

PipeDream-2BW runs the 1F1B schedule (each stage alternates one forward
and one backward in steady state), avoiding GPipe's flush bubbles, at the
cost of keeping *two* weight versions per stage.  With per-GPU swapping
the doubled weight state adds memory pressure -- which is why the paper
finds the gap between GP Swap and 2BW Swap "less dramatic" in the
swap-dominated regime than when models fit in memory.

``recompute=True`` gives 2BW Swap (R).
"""

from __future__ import annotations

from repro.baselines.base import BaselinePlan, BaselineScheme, LmsReplay
from repro.baselines.gpipe_swap import compute_balanced_stages
from repro.core.config import microbatch_group
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind


def one_f_one_b_order(n_stages: int, stage: int, n_mbs: int) -> list[tuple[str, int]]:
    """The 1F1B schedule for one stage: warmup forwards, steady-state
    alternation, drain backwards."""
    warmup = min(n_stages - stage, n_mbs)
    order: list[tuple[str, int]] = [("F", i) for i in range(warmup)]
    next_f, next_b = warmup, 0
    while next_b < n_mbs:
        order.append(("B", next_b))
        next_b += 1
        if next_f < n_mbs:
            order.append(("F", next_f))
            next_f += 1
    return order


class PipeDream2BWPlanner(BaselineScheme):
    """Plan and run 2BW Swap / 2BW Swap (R)."""

    name = "2bw-swap"

    def __init__(self, *args, recompute: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.recompute = recompute
        if recompute:
            self.name = "2bw-swap-r"

    def default_microbatch(self) -> int:
        """Pipelines need several microbatches per stage to fill (GPipe
        recommends m >= 4x the stage count), on top of the memory bound."""
        fit = super().default_microbatch()
        pipelined = max(1, self.minibatch // (4 * self.server.n_gpus))
        return min(fit, pipelined)

    def plan(self) -> BaselinePlan:
        n = self.server.n_gpus
        u = min(self.microbatch, self.minibatch)
        mbs = microbatch_group(self.minibatch, u)
        stages = compute_balanced_stages(self.profiles, n)
        capacity = self.server.gpu.memory_bytes
        profiles = self.profiles

        # Emit tasks in a global order consistent with every stage's local
        # 1F1B order and with cross-stage data deps (fwd: stage-major per
        # mb; bwd: reverse).  We interleave by walking per-stage orders and
        # releasing a step once its dependency is already emitted.
        per_stage = [one_f_one_b_order(n, s, len(mbs)) for s in range(n)]
        cursor = [0] * n
        emitted: dict[tuple[str, int, int], int] = {}  # (kind, stage, mb) -> tid

        graph = TaskGraph(mode=self.name, n_devices=n, pageable_swaps=True)
        replays = [LmsReplay(capacity) for _ in range(n)]
        slots = self.model.optimizer_slots

        def ready(s: int) -> bool:
            kind, i = per_stage[s][cursor[s]]
            if kind == "F":
                return s == 0 or ("F", s - 1, i) in emitted
            return s == n - 1 or ("B", s + 1, i) in emitted

        def emit(s: int) -> None:
            kind, i = per_stage[s][cursor[s]]
            cursor[s] += 1
            size = mbs[i]
            stage = stages[s]
            replay = replays[s]
            version = i % 2  # double-buffered weight versions
            replay.begin_step()
            if kind == "F":
                for layer in stage.layers:
                    replay.use(
                        f"W:{layer}@{version}", profiles[layer].param_bytes
                    )
                    if not self.recompute:
                        replay.produce(
                            f"stash:{layer}:{i}",
                            profiles[layer].saved_for_backward_bytes(size),
                        )
                if self.recompute:
                    replay.produce(
                        f"ckpt:{s}:{i}",
                        profiles.boundary_in_bytes(stage, size),
                    )
            else:
                if self.recompute:
                    replay.use(
                        f"ckpt:{s}:{i}",
                        profiles.boundary_in_bytes(stage, size),
                    )
                    replay.drop(f"ckpt:{s}:{i}")
                for layer in reversed(list(stage.layers)):
                    replay.use(
                        f"W:{layer}@{version}", profiles[layer].param_bytes
                    )
                    stash_key = (
                        f"restash:{layer}" if self.recompute
                        else f"stash:{layer}:{i}"
                    )
                    if self.recompute:
                        replay.produce(stash_key,
                                       profiles[layer].saved_for_backward_bytes(size))
                    else:
                        replay.use(stash_key,
                                   profiles[layer].saved_for_backward_bytes(size))
                    replay.drop(stash_key)
                    replay.use(
                        f"dW:{layer}", profiles[layer].param_bytes, write=True
                    )
            swap_in, swap_out = replay.end_step()

            task = Task(
                tid=len(graph.tasks),
                kind=TaskKind.FWD if kind == "F" else TaskKind.BWD,
                first_layer=stage.first,
                last_layer=stage.last,
                device=s,
                microbatches=(size,),
                recompute=self.recompute and kind == "B",
                label=f"{kind}{s}mb{i}",
            )
            if swap_in:
                task.ins.append(Move(
                    tensor=TensorKind.W, nbytes=swap_in,
                    channel=Channel.SWAP, label="lms-in",
                ))
            if kind == "F" and s > 0:
                task.ins.append(Move(
                    tensor=TensorKind.X,
                    nbytes=profiles.boundary_in_bytes(stage, size),
                    channel=Channel.P2P, peer=s - 1,
                    src_task=emitted[("F", s - 1, i)], label="act",
                ))
            if kind == "B" and s < n - 1:
                task.ins.append(Move(
                    tensor=TensorKind.DY,
                    nbytes=profiles.boundary_out_bytes(stage, size),
                    channel=Channel.P2P, peer=s + 1,
                    src_task=emitted[("B", s + 1, i)], label="grad-act",
                ))
            if swap_out:
                task.outs.append(Move(
                    tensor=TensorKind.DW, nbytes=swap_out,
                    channel=Channel.SWAP, label="lms-out",
                ))
            # Everything fetched across PCIe (host swaps and boundary
            # activations alike) occupies GPU memory while the task runs.
            task.resident_bytes = sum(
                move.nbytes for move in task.ins if move.channel.crosses_pcie
            )
            graph.add(task)
            emitted[(kind, s, i)] = task.tid

        remaining = sum(len(order) for order in per_stage)
        while remaining:
            progressed = False
            for s in range(n):
                while cursor[s] < len(per_stage[s]) and ready(s):
                    emit(s)
                    remaining -= 1
                    progressed = True
            if not progressed:
                raise RuntimeError("1F1B schedule deadlocked (bug)")

        # Per-stage weight update at iteration end.
        for s, stage in enumerate(stages):
            replay = replays[s]
            replay.begin_step()
            for layer in stage.layers:
                replay.use(f"W:{layer}@0", profiles[layer].param_bytes,
                           write=True)
                replay.use(f"dW:{layer}", profiles[layer].param_bytes)
                replay.use(f"K:{layer}", profiles[layer].param_bytes * slots,
                           write=True)
            for layer in stage.layers:
                replay.flush(f"W:{layer}@0")
                replay.flush(f"K:{layer}")
            swap_in, swap_out = replay.end_step()
            task = Task(
                tid=len(graph.tasks), kind=TaskKind.UPD,
                first_layer=stage.first, last_layer=stage.last,
                device=s, microbatches=(1,), label=f"U{s}",
            )
            if swap_in:
                task.ins.append(Move(
                    tensor=TensorKind.W, nbytes=swap_in,
                    channel=Channel.SWAP, label="lms-in",
                ))
            task.ins.append(Move(
                tensor=TensorKind.DW, nbytes=0, channel=Channel.LOCAL,
                src_task=emitted[("B", s, len(mbs) - 1)], label="order",
            ))
            if swap_out:
                task.outs.append(Move(
                    tensor=TensorKind.DW, nbytes=swap_out,
                    channel=Channel.SWAP, label="lms-out",
                ))
            task.resident_bytes = swap_in
            graph.add(task)

        graph.validate()
        host_state = (
            self.model.model_state_bytes
            + self.model.weight_bytes  # the second weight version
            + self.minibatch * self.model.sample_bytes
        )
        return BaselinePlan(
            scheme=self.name,
            model=self.model,
            server=self.server,
            minibatch=self.minibatch,
            microbatch=u,
            decomposed=self.decomposed,
            profiles=self.profiles,
            graph=graph,
            host_state_bytes=host_state,
            notes=f"1F1B, 2 weight versions, recompute="
                  f"{'on' if self.recompute else 'off'}",
        )
