"""Shared machinery for the baseline planners.

The core piece is the *LMS replay*: walk the exact tensor-touch sequence a
schedule performs (weights, stashed activations, gradient buffers,
optimizer state, layer by layer, microbatch by microbatch) through a
per-GPU :class:`~repro.memory.swap_manager.LruSwapManager`, and record the
swap-in/out bytes each schedule step incurs.  The planner then attaches
those bytes as moves on per-(phase, microbatch) tasks and the standard
Runtime executes the graph.

IBM-LMS moves tensors rather than dropping clean copies, so evictions
write back unconditionally -- this is what reproduces the paper's
``(4m+2)N|W|`` weight-swap volume for DP Swap without hard-coding it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.decomposer import DecomposedModel, Decomposer
from repro.core.profiler import ModelProfiles, Profiler
from repro.core.types import TaskGraph
from repro.hardware.server import ServerSpec, SimulatedServer
from repro.memory.swap_manager import LruSwapManager
from repro.models.spec import ModelSpec
from repro.models.zoo import build_model
from repro.runtime.executor import Executor
from repro.runtime.metrics import RunMetrics
from repro.runtime.timemodel import TrueTimeModel
from repro.sim.engine import Simulator


class LmsReplay:
    """Replays a schedule's tensor touches and accumulates step volumes.

    Touches between :meth:`begin_step` and :meth:`end_step` are charged to
    that step; the caller turns each step's (swap_in, swap_out) totals into
    one task's moves.
    """

    def __init__(self, capacity: int):
        self.manager = LruSwapManager(capacity, writeback_clean=True)
        self._step_in = 0
        self._step_out = 0

    def begin_step(self) -> None:
        self._step_in = 0
        self._step_out = 0

    def end_step(self) -> tuple[int, int]:
        return self._step_in, self._step_out

    # -- touch vocabulary -------------------------------------------------------

    def use(self, key: str, nbytes: int, write: bool = False) -> None:
        """Access a tensor that lives in (virtualized) GPU memory."""
        if nbytes == 0:
            return
        decision = self.manager.touch(key, nbytes, write=write)
        self._step_in += decision.swap_in_bytes
        self._step_out += decision.swap_out_bytes

    def produce(self, key: str, nbytes: int) -> None:
        """A tensor created on the GPU (activation, gradient)."""
        if nbytes == 0:
            return
        decision = self.manager.produce(key, nbytes)
        self._step_out += decision.swap_out_bytes

    def drop(self, key: str) -> None:
        """Free a dead tensor without write-back."""
        self.manager.discard(key)

    def flush(self, key: str) -> None:
        """Force a dirty tensor back to host (end-of-iteration state)."""
        self._step_out += self.manager.flush(key)


@dataclass
class BaselinePlan:
    """A baseline schedule ready to execute."""

    scheme: str
    model: ModelSpec
    server: ServerSpec
    minibatch: int
    microbatch: int
    decomposed: DecomposedModel
    profiles: ModelProfiles
    graph: TaskGraph
    host_state_bytes: int
    notes: str = ""

    def describe(self) -> str:
        return (
            f"{self.scheme} for {self.model.name}, minibatch "
            f"{self.minibatch} (microbatch {self.microbatch}): "
            f"{len(self.graph)} tasks, static swap "
            f"{self.graph.global_swap_bytes() / 2**30:.1f} GiB/iter"
        )


class BaselineScheme:
    """Base class: owns decomposition/profiling and the run loop.

    ``reactive = True`` (the LMS-style schemes) runs without prefetch:
    on-demand virtualization faults block compute until the tensor
    arrives, exactly the behaviour per-GPU swapping exhibits.  The
    ZeRO-Infinity analog overrides this -- it ships its own pinned,
    overlapped transfer engine.
    """

    name = "baseline"
    reactive = True
    #: Justified analyzer exceptions for this scheme's schedules; each is
    #: surfaced (not silenced) by the analyzer as a waived INFO finding.
    waivers: tuple = ()

    def __init__(
        self,
        model: Union[str, ModelSpec],
        server: ServerSpec,
        minibatch: int,
        microbatch: Optional[int] = None,
        seed: int = 0,
    ):
        self.model = build_model(model) if isinstance(model, str) else model
        self.server = server
        self.minibatch = minibatch
        # One seed pins the whole baseline run: the Decomposer draws its
        # kernel noise through repro.common.rng, the package-wide seeding
        # scheme shared with Harmony runs and chaos fault plans.
        self.seed = seed
        self.decomposed = Decomposer(seed=seed).decompose(self.model)
        self.profiles = Profiler(server.gpu).profile(self.decomposed)
        self.microbatch = microbatch or self.default_microbatch()

    # -- to override ---------------------------------------------------------------

    def default_microbatch(self) -> int:
        """Largest microbatch whose single-layer working set fits the GPU."""
        from repro.graph.layer import Phase

        capacity = int(self.server.gpu.memory_bytes * 0.9)
        u = 1
        while u * 2 <= self.minibatch:
            peak = max(
                self.profiles[i].memory(Phase.BWD, u * 2)
                for i in range(len(self.profiles))
            )
            if peak > capacity // 4:
                break
            u *= 2
        return u

    def plan(self) -> BaselinePlan:
        raise NotImplementedError

    # -- execution -------------------------------------------------------------------

    def run(self, plan: Optional[BaselinePlan] = None) -> RunMetrics:
        plan = plan or self.plan()
        sim = Simulator()
        live = SimulatedServer(sim, self.server)
        time_model = TrueTimeModel(
            self.decomposed, self.server.gpu, self.server.host,
            n_gpus=self.server.n_gpus,
        )
        executor = Executor(
            live, time_model, prefetch=not self.reactive,
            host_state_bytes=plan.host_state_bytes,
        )
        return executor.run(plan.graph)


def run_baseline(scheme: BaselineScheme) -> RunMetrics:
    """Plan and execute a baseline in one call."""
    return scheme.run()
