"""DP Swap: data parallelism with per-GPU memory virtualization.

Every GPU holds a full model replica and processes ``D/N`` samples per
iteration in microbatches (gradient accumulation), with IBM-LMS-style
swapping standing in for the memory it does not have.  The touch replay
exposes the paper's pathologies mechanically:

- *repeated swaps*: each microbatch's forward and backward re-fetch every
  layer's weights, because the stash evicted them (Section 2, item 1);
- *unnecessary swaps*: gradients and weights bounce to host between the
  backward pass and the end-of-iteration update (item 2);
- *CPU-GPU swaps only*: all N replicas hammer the shared host link with
  identical traffic -- swap volume grows linearly with N (item 3).

Result: swap volume ``(4m+2)N|W|`` plus activation/gradient traffic --
the left bars of Figure 9 and the dominant line of Figure 10.
"""

from __future__ import annotations

from repro.baselines.base import BaselinePlan, BaselineScheme, LmsReplay
from repro.core.config import microbatch_group
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind
from repro.graph.layer import Phase


def layer_chunks(profiles, max_bytes: int, max_layers: int = 32) -> list[tuple[int, int]]:
    """Contiguous layer chunks whose weights fit a transfer window.

    LMS interleaves swapping and compute layer by layer; emitting one task
    per (microbatch, chunk) lets the Runtime's prefetch reproduce that
    overlap without one task per layer.
    """
    chunks = []
    first = 0
    n = len(profiles)
    while first < n:
        last = first
        acc = profiles[first].param_bytes
        while (
            last + 1 < n
            and last - first + 1 < max_layers
            and acc + profiles[last + 1].param_bytes <= max_bytes
        ):
            last += 1
            acc += profiles[last].param_bytes
        chunks.append((first, last))
        first = last + 1
    return chunks


class DpSwapPlanner(BaselineScheme):
    """Plan and run DP Swap."""

    name = "dp-swap"

    def plan(self) -> BaselinePlan:
        n = self.server.n_gpus
        if self.minibatch % n:
            raise ValueError("DP minibatch must divide across GPUs")
        share = self.minibatch // n
        u = min(self.microbatch, share)
        mbs = microbatch_group(share, u)
        capacity = self.server.gpu.memory_bytes
        chunks = layer_chunks(self.profiles, max_bytes=capacity // 8)
        profiles = self.profiles

        graph = TaskGraph(mode="dp-swap", n_devices=n, pageable_swaps=True)
        last_bwd_tid: dict[int, int] = {}

        for gpu in range(n):
            replay = LmsReplay(capacity)
            prev_tid = None

            # -- forward: all microbatches, stashing every activation ------
            for i, size in enumerate(mbs):
                for first, last in chunks:
                    replay.begin_step()
                    for layer in range(first, last + 1):
                        replay.use(f"W:{layer}", profiles[layer].param_bytes)
                        replay.produce(
                            f"stash:{layer}:{i}",
                            profiles[layer].saved_for_backward_bytes(size),
                        )
                    swap_in, swap_out = replay.end_step()
                    prev_tid = self._emit(
                        graph, TaskKind.FWD, gpu, first, last, size,
                        swap_in, swap_out, prev_tid,
                        label=f"F[{first}-{last}]mb{i}@g{gpu}",
                    )

            # -- backward: reverse order, consuming stash, accumulating dW --
            for i in reversed(range(len(mbs))):
                size = mbs[i]
                for first, last in reversed(chunks):
                    replay.begin_step()
                    for layer in range(last, first - 1, -1):
                        replay.use(f"W:{layer}", profiles[layer].param_bytes)
                        replay.use(
                            f"stash:{layer}:{i}",
                            profiles[layer].saved_for_backward_bytes(size),
                        )
                        replay.drop(f"stash:{layer}:{i}")
                        replay.use(
                            f"dW:{layer}", profiles[layer].param_bytes,
                            write=True,
                        )
                    swap_in, swap_out = replay.end_step()
                    prev_tid = self._emit(
                        graph, TaskKind.BWD, gpu, first, last, size,
                        swap_in, swap_out, prev_tid,
                        label=f"B[{first}-{last}]mb{i}@g{gpu}",
                    )
            last_bwd_tid[gpu] = prev_tid

        # -- allreduce + weight update, per replica -------------------------
        slots = self.model.optimizer_slots
        for gpu in range(n):
            replay = LmsReplay(capacity)
            replay.begin_step()
            for layer in range(len(profiles)):
                replay.use(f"W:{layer}", profiles[layer].param_bytes, write=True)
                replay.use(f"dW:{layer}", profiles[layer].param_bytes)
                replay.use(
                    f"K:{layer}",
                    profiles[layer].param_bytes * slots,
                    write=True,
                )
            for layer in range(len(profiles)):
                replay.flush(f"W:{layer}")
                replay.flush(f"K:{layer}")
            swap_in, swap_out = replay.end_step()
            task = Task(
                tid=len(graph.tasks),
                kind=TaskKind.UPD,
                first_layer=0,
                last_layer=len(profiles) - 1,
                device=gpu,
                microbatches=(1,),
                label=f"U@g{gpu}",
            )
            task.ins.append(Move(
                tensor=TensorKind.W, nbytes=swap_in, channel=Channel.SWAP,
                label="lms-in",
            ))
            # Ring allreduce: each replica receives ~2(N-1)/N |W| from its
            # peers over p2p before it can apply the averaged gradient.
            ring_bytes = int(2 * (n - 1) / n * profiles.total_param_bytes)
            for peer in range(n):
                if peer == gpu:
                    continue
                task.ins.append(Move(
                    tensor=TensorKind.DW,
                    nbytes=ring_bytes // max(1, n - 1),
                    channel=Channel.P2P,
                    peer=peer,
                    src_task=last_bwd_tid[peer],
                    label=f"allreduce<-g{peer}",
                ))
            task.outs.append(Move(
                tensor=TensorKind.DW, nbytes=swap_out, channel=Channel.SWAP,
                label="lms-out",
            ))
            # Swapped-in state plus the allreduce shards it receives all
            # occupy GPU memory while the update runs.
            task.resident_bytes = sum(
                move.nbytes for move in task.ins if move.channel.crosses_pcie
            )
            graph.add(task)

        graph.validate()
        host_state = (
            self.model.model_state_bytes
            + self.minibatch * self.model.sample_bytes
        )
        return BaselinePlan(
            scheme=self.name,
            model=self.model,
            server=self.server,
            minibatch=self.minibatch,
            microbatch=u,
            decomposed=self.decomposed,
            profiles=self.profiles,
            graph=graph,
            host_state_bytes=host_state,
            notes=f"{len(mbs)} microbatches/GPU, {len(chunks)} layer chunks",
        )

    def _emit(
        self,
        graph: TaskGraph,
        kind: TaskKind,
        gpu: int,
        first: int,
        last: int,
        size: int,
        swap_in: int,
        swap_out: int,
        prev_tid,
        label: str,
    ) -> int:
        task = Task(
            tid=len(graph.tasks),
            kind=kind,
            first_layer=first,
            last_layer=last,
            device=gpu,
            microbatches=(size,),
            recompute=False,  # DP Swap stashes; it does not rematerialize
            label=label,
        )
        if swap_in:
            task.ins.append(Move(
                tensor=TensorKind.W, nbytes=swap_in, channel=Channel.SWAP,
                label="lms-in",
            ))
        if prev_tid is not None:
            task.ins.append(Move(
                tensor=TensorKind.DW, nbytes=0, channel=Channel.LOCAL,
                src_task=prev_tid, label="order",
            ))
        if swap_out:
            task.outs.append(Move(
                tensor=TensorKind.DW, nbytes=swap_out, channel=Channel.SWAP,
                label="lms-out",
            ))
        task.resident_bytes = swap_in
        graph.add(task)
        return task.tid
