"""A small float64 neural-network engine for correctness validation.

The paper validates that Harmony's schedules preserve synchronous-SGD
semantics by comparing per-minibatch training loss against a no-swap
baseline (Figures 12 and 19, Table 3).  This package provides the
numerics to run that experiment end to end:

- :mod:`~repro.numeric.layers` -- layers with explicit forward/backward,
- :mod:`~repro.numeric.model` -- sequential models ("BERT-tiny" classifier
  and "GPT-tiny" language model),
- :mod:`~repro.numeric.optim` -- deterministic SGD and Adam,
- :mod:`~repro.numeric.data` -- synthetic MRPC-like and WikiText-like
  datasets (fixed seeds),
- :mod:`~repro.numeric.trainer` -- the single-device reference loop,
- :mod:`~repro.numeric.harmony_exec` -- the same model trained through a
  Harmony-style schedule: microbatching, pack-granularity checkpointing
  and rematerialization, grouped execution, DP sharding.

Everything runs in float64 with deterministic accumulation order, so
Harmony-vs-baseline losses agree to ~1e-12 relative (the paper's fp32
"exact match" is plot-resolution equality).
"""

from repro.numeric.model import make_classifier, make_lm
from repro.numeric.trainer import ReferenceTrainer
from repro.numeric.harmony_exec import HarmonyNumericTrainer

__all__ = [
    "make_classifier",
    "make_lm",
    "ReferenceTrainer",
    "HarmonyNumericTrainer",
]
