"""Sequential numeric models: "BERT-tiny" and "GPT-tiny".

Both are chains of residual MLP blocks with layer normalization -- the
structural skeleton of a transformer without attention, which is all the
correctness experiment needs: what matters is that the chain is deep
enough to pack, checkpoint, and rematerialize exactly like the real
models, and that training actually converges on the synthetic tasks.
"""

from __future__ import annotations

import numpy as np

from repro.numeric.layers import (
    CrossEntropyHead,
    Gelu,
    Layer,
    LayerNorm,
    Linear,
    Residual,
)


class SequentialModel:
    """An ordered chain of layers ending in a loss head."""

    def __init__(self, layers: list[Layer], head: CrossEntropyHead):
        self.layers = layers
        self.head = head

    @property
    def n_layers(self) -> int:
        return len(self.layers) + 1  # + loss head

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def parameters(self) -> dict[str, np.ndarray]:
        params = {}
        for i, layer in enumerate(self.layers):
            for key, value in layer.parameters().items():
                params[f"L{i}.{key}"] = value
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        grads = {}
        for i, layer in enumerate(self.layers):
            for key, value in layer.gradients().items():
                grads[f"L{i}.{key}"] = value
        return grads

    # -- whole-model passes (the no-swap reference path) ----------------------

    def forward(self, x: np.ndarray, targets: np.ndarray) -> tuple[float, list]:
        self.head.set_targets(targets, total_weight=len(targets))
        stashes = []
        h = x
        for layer in self.layers:
            h, stash = layer.forward(h)
            stashes.append(stash)
        loss, head_stash = self.head.forward(h)
        stashes.append(head_stash)
        return float(loss[0]), stashes

    def backward(self, stashes: list) -> None:
        dy = self.head.backward(np.array([1.0]), stashes[-1])
        for layer, stash in zip(reversed(self.layers), reversed(stashes[:-1])):
            dy = layer.backward(dy, stash)

    # -- segment passes (what Harmony tasks execute) -----------------------------

    def forward_segment(self, first: int, last: int, x: np.ndarray) -> tuple[np.ndarray, list]:
        """Forward layers ``first..last`` (inclusive; the head is layer
        ``len(layers)``), returning (output, stashes)."""
        stashes = []
        h = x
        for index in range(first, last + 1):
            layer = self.head if index == len(self.layers) else self.layers[index]
            h, stash = layer.forward(h)
            stashes.append(stash)
        return h, stashes

    def backward_segment(self, first: int, last: int, dy: np.ndarray,
                         stashes: list) -> np.ndarray:
        for offset, index in enumerate(reversed(range(first, last + 1))):
            layer = self.head if index == len(self.layers) else self.layers[index]
            dy = layer.backward(dy, stashes[len(stashes) - 1 - offset])
        return dy

    def predict(self, x: np.ndarray) -> np.ndarray:
        h = x
        for layer in self.layers:
            h, _ = layer.forward(h)
        return h.argmax(axis=-1)


def _block(features: int, hidden: int, rng: np.random.Generator) -> list[Layer]:
    return [
        LayerNorm(features),
        Residual([Linear(features, hidden, rng), Gelu(), Linear(hidden, features, rng)]),
    ]


def make_classifier(
    n_blocks: int = 4,
    features: int = 32,
    hidden: int = 64,
    n_classes: int = 2,
    seed: int = 0,
) -> SequentialModel:
    """"BERT-tiny": MLP-residual chain ending in a binary classifier,
    standing in for BERT-Large fine-tuning on MRPC."""
    rng = np.random.default_rng(seed)
    layers: list[Layer] = [Linear(features, features, rng)]
    for _ in range(n_blocks):
        layers.extend(_block(features, hidden, rng))
    layers.append(LayerNorm(features))
    layers.append(Linear(features, n_classes, rng))
    return SequentialModel(layers, CrossEntropyHead())


def make_lm(
    n_blocks: int = 4,
    features: int = 32,
    hidden: int = 64,
    vocab: int = 50,
    seed: int = 1,
) -> SequentialModel:
    """"GPT-tiny": the same skeleton with a vocabulary-sized head,
    standing in for GPT2-Medium fine-tuning on WikiText."""
    rng = np.random.default_rng(seed)
    layers: list[Layer] = [Linear(features, features, rng)]
    for _ in range(n_blocks):
        layers.extend(_block(features, hidden, rng))
    layers.append(LayerNorm(features))
    layers.append(Linear(features, vocab, rng))
    return SequentialModel(layers, CrossEntropyHead())
