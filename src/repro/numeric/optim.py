"""Deterministic optimizers (float64 SGD with momentum, and Adam).

State is keyed by parameter name, so the same optimizer instance can be
driven by either the reference trainer or the Harmony executor and their
updates stay bit-comparable.
"""

from __future__ import annotations

import numpy as np


class Optimizer:
    def __init__(self, lr: float):
        self.lr = lr
        self.step_count = 0

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        raise NotImplementedError


class Sgd(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, lr: float = 0.1, momentum: float = 0.9):
        super().__init__(lr)
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        self.step_count += 1
        for name in sorted(params):
            grad = grads[name]
            vel = self._velocity.setdefault(name, np.zeros_like(grad))
            vel *= self.momentum
            vel += grad
            params[name] -= self.lr * vel


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8):
        super().__init__(lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        self.step_count += 1
        t = self.step_count
        for name in sorted(params):
            grad = grads[name]
            m = self._m.setdefault(name, np.zeros_like(grad))
            v = self._v.setdefault(name, np.zeros_like(grad))
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            mhat = m / (1 - self.beta1**t)
            vhat = v / (1 - self.beta2**t)
            params[name] -= self.lr * mhat / (np.sqrt(vhat) + self.eps)
