"""Training through a Harmony-style schedule, numerically.

Executes exactly what the system's task graph prescribes, against the real
numbers:

- the minibatch is decomposed into forward microbatches of ``U_F``; the
  forward pass runs pack by pack, *checkpointing only the input of each
  backward pack* (everything else is discarded, as under rematerialization);
- the backward pass runs in microbatches of ``U_B``, pack by pack in
  reverse: rematerialize the pack's stash from its checkpoint, then walk
  the layers backwards, accumulating gradients;
- Harmony DP shards the minibatch across N virtual workers first, each
  worker microbatching its shard; gradients sum across workers in a fixed
  order (the CPU-side reduction);
- one optimizer step per iteration (synchronous SGD semantics).

Comparing this loop's per-minibatch losses against the reference trainer
is the Figure 12/19 experiment.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.config import microbatch_group
from repro.numeric.data import Dataset
from repro.numeric.model import SequentialModel
from repro.numeric.optim import Optimizer
from repro.numeric.trainer import TrainCurve


def default_packs(n_layers: int, n_packs: int) -> list[tuple[int, int]]:
    """Near-even contiguous packs over ``n_layers`` (incl. the loss head)."""
    base, extra = divmod(n_layers, n_packs)
    packs = []
    first = 0
    for i in range(n_packs):
        size = base + (1 if i < extra else 0)
        packs.append((first, first + size - 1))
        first += size
    return packs


class HarmonyNumericTrainer:
    """Runs synchronous-SGD iterations through the Harmony schedule."""

    def __init__(
        self,
        model: SequentialModel,
        optimizer: Optimizer,
        u_f: int,
        u_b: int,
        packs_b: Optional[Sequence[tuple[int, int]]] = None,
        n_workers: int = 1,
    ):
        self.model = model
        self.optimizer = optimizer
        self.u_f = u_f
        self.u_b = u_b
        self.packs_b = list(packs_b) if packs_b else default_packs(model.n_layers, 3)
        if self.packs_b[0][0] != 0 or self.packs_b[-1][1] != model.n_layers - 1:
            raise ValueError("backward packs must tile all layers")
        self.n_workers = n_workers

    # -- one worker's share -------------------------------------------------------

    def _forward_share(self, x: np.ndarray, y: np.ndarray, total: int) -> tuple[float, dict[int, np.ndarray]]:
        """Forward a worker's shard in U_F microbatches, keeping only the
        backward-pack input checkpoints.  Returns (partial loss, ckpts)."""
        checkpoints: dict[int, list[np.ndarray]] = {p[0]: [] for p in self.packs_b}
        loss = 0.0
        offset = 0
        for size in microbatch_group(len(x), self.u_f):
            xm = x[offset:offset + size]
            ym = y[offset:offset + size]
            self.model.head.set_targets(ym, total_weight=total)
            h = xm
            for first, last in self.packs_b:
                if first in checkpoints:
                    checkpoints[first].append(h)
                h, _ = self.model.forward_segment(first, last, h)
            loss += float(h[0])
            offset += size
        return loss, {
            boundary: np.concatenate(chunks)
            for boundary, chunks in checkpoints.items()
        }

    def _backward_share(self, x: np.ndarray, y: np.ndarray, total: int,
                        checkpoints: dict[int, np.ndarray]) -> None:
        """Backward the shard in U_B microbatches, rematerializing each
        pack's stash from its checkpoint."""
        group = microbatch_group(len(x), self.u_b)
        offsets = np.cumsum([0] + list(group))
        # dy flowing between packs, per microbatch (None until the loss
        # pack produces it).
        dys: list[Optional[np.ndarray]] = [None] * len(group)
        for first, last in reversed(self.packs_b):
            ckpt = checkpoints[first]
            for i, size in enumerate(group):
                lo, hi = offsets[i], offsets[i] + size
                self.model.head.set_targets(y[lo:hi], total_weight=total)
                # Rematerialize (jit-compute makes this the first forward
                # for the last pack at the system level; numerically the
                # recomputation is identical).
                _, stashes = self.model.forward_segment(first, last, ckpt[lo:hi])
                dy = dys[i]
                if dy is None:
                    dy = np.array([1.0])  # d(loss)/d(loss)
                dys[i] = self.model.backward_segment(first, last, dy, stashes)

    # -- public API ------------------------------------------------------------------

    def train_iteration(self, x: np.ndarray, y: np.ndarray) -> float:
        if len(x) % self.n_workers:
            raise ValueError("minibatch must divide across workers")
        self.model.zero_grad()
        total = len(x)
        share = total // self.n_workers
        loss = 0.0
        shares = []
        for w in range(self.n_workers):
            xs = x[w * share:(w + 1) * share]
            ys = y[w * share:(w + 1) * share]
            partial, ckpts = self._forward_share(xs, ys, total)
            loss += partial
            shares.append((xs, ys, ckpts))
        for xs, ys, ckpts in shares:
            self._backward_share(xs, ys, total, ckpts)
        self.optimizer.step(self.model.parameters(), self.model.gradients())
        return loss

    def train(self, dataset: Dataset, batch_size: int, epochs: int = 1) -> TrainCurve:
        curve = TrainCurve()
        for _ in range(epochs):
            for x, y in dataset.minibatches(batch_size):
                curve.losses.append(self.train_iteration(x, y))
        predictions = self.model.predict(dataset.x_eval)
        curve.eval_accuracy = float((predictions == dataset.y_eval).mean())
        return curve
