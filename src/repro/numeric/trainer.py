"""The single-device, no-swap reference training loop.

This is the "baseline code" of Figures 12/19: whole-minibatch forward,
whole-minibatch backward, one optimizer step -- the semantics Harmony's
schedules must preserve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.numeric.data import Dataset
from repro.numeric.model import SequentialModel
from repro.numeric.optim import Optimizer


@dataclass
class TrainCurve:
    """Per-minibatch losses plus final evaluation quality."""

    losses: list[float] = field(default_factory=list)
    eval_accuracy: float = 0.0
    eval_loss: float = 0.0

    @property
    def eval_perplexity(self) -> float:
        """exp of the evaluation loss (the LM-quality metric of Table 3)."""
        return float(np.exp(self.eval_loss))


class ReferenceTrainer:
    """Full-batch training, recording the loss of every minibatch."""

    def __init__(self, model: SequentialModel, optimizer: Optimizer):
        self.model = model
        self.optimizer = optimizer

    def train_iteration(self, x: np.ndarray, y: np.ndarray) -> float:
        self.model.zero_grad()
        loss, stashes = self.model.forward(x, y)
        self.model.backward(stashes)
        self.optimizer.step(self.model.parameters(), self.model.gradients())
        return loss

    def train(self, dataset: Dataset, batch_size: int, epochs: int = 1) -> TrainCurve:
        curve = TrainCurve()
        for _ in range(epochs):
            for x, y in dataset.minibatches(batch_size):
                curve.losses.append(self.train_iteration(x, y))
        curve.eval_accuracy = self.evaluate(dataset)
        return curve

    def evaluate(self, dataset: Dataset) -> float:
        predictions = self.model.predict(dataset.x_eval)
        return float((predictions == dataset.y_eval).mean())

    def eval_loss(self, dataset: Dataset) -> float:
        loss, _ = self.model.forward(dataset.x_eval, dataset.y_eval)
        return loss
