"""Layers with explicit forward/backward passes.

Explicit backward (rather than a taped autograd) mirrors how the system
executes: a backward task re-runs the pack's forward from a checkpoint to
rematerialize the stash, then walks the layers in reverse.  Each layer
owns its parameters and gradient buffers; gradients *accumulate* so
microbatched execution sums partial gradients exactly like gradient
accumulation does.

All math is float64.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class Layer:
    """Base: stateless unless it has parameters."""

    def parameters(self) -> dict[str, np.ndarray]:
        return {}

    def gradients(self) -> dict[str, np.ndarray]:
        return {}

    def zero_grad(self) -> None:
        for grad in self.gradients().values():
            grad.fill(0.0)

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        """Returns (output, stash) -- stash is whatever backward needs."""
        raise NotImplementedError

    def backward(self, dy: np.ndarray, stash: object) -> np.ndarray:
        """Returns dx; accumulates parameter gradients."""
        raise NotImplementedError


class Linear(Layer):
    """Affine layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        scale = 1.0 / np.sqrt(in_features)
        self.w = rng.uniform(-scale, scale, size=(in_features, out_features))
        self.b = np.zeros(out_features)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)

    def parameters(self) -> dict[str, np.ndarray]:
        return {"w": self.w, "b": self.b}

    def gradients(self) -> dict[str, np.ndarray]:
        return {"w": self.dw, "b": self.db}

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        return x @ self.w + self.b, x

    def backward(self, dy: np.ndarray, stash: object) -> np.ndarray:
        x = stash
        self.dw += x.T @ dy
        self.db += dy.sum(axis=0)
        return dy @ self.w.T


class Gelu(Layer):
    """tanh-approximation GELU."""

    _C = np.sqrt(2.0 / np.pi)

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        inner = self._C * (x + 0.044715 * x**3)
        y = 0.5 * x * (1.0 + np.tanh(inner))
        return y, x

    def backward(self, dy: np.ndarray, stash: object) -> np.ndarray:
        x = stash
        inner = self._C * (x + 0.044715 * x**3)
        tanh = np.tanh(inner)
        sech2 = 1.0 - tanh**2
        dinner = self._C * (1.0 + 3 * 0.044715 * x**2)
        return dy * (0.5 * (1.0 + tanh) + 0.5 * x * sech2 * dinner)


class LayerNorm(Layer):
    """Normalization over the feature dimension with learned gain/bias."""

    def __init__(self, features: int, eps: float = 1e-5):
        self.gamma = np.ones(features)
        self.beta = np.zeros(features)
        self.dgamma = np.zeros_like(self.gamma)
        self.dbeta = np.zeros_like(self.beta)
        self.eps = eps

    def parameters(self) -> dict[str, np.ndarray]:
        return {"gamma": self.gamma, "beta": self.beta}

    def gradients(self) -> dict[str, np.ndarray]:
        return {"gamma": self.dgamma, "beta": self.dbeta}

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean) * inv
        return xhat * self.gamma + self.beta, (xhat, inv)

    def backward(self, dy: np.ndarray, stash: object) -> np.ndarray:
        xhat, inv = stash
        self.dgamma += (dy * xhat).sum(axis=0)
        self.dbeta += dy.sum(axis=0)
        dxhat = dy * self.gamma
        n = xhat.shape[-1]
        return inv * (
            dxhat
            - dxhat.mean(axis=-1, keepdims=True)
            - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
        )


class Residual(Layer):
    """Wraps a sub-chain ``f``: ``y = x + f(x)``."""

    def __init__(self, inner: list[Layer]):
        self.inner = inner

    def parameters(self) -> dict[str, np.ndarray]:
        params = {}
        for i, layer in enumerate(self.inner):
            for key, value in layer.parameters().items():
                params[f"{i}.{key}"] = value
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        grads = {}
        for i, layer in enumerate(self.inner):
            for key, value in layer.gradients().items():
                grads[f"{i}.{key}"] = value
        return grads

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        stashes = []
        h = x
        for layer in self.inner:
            h, stash = layer.forward(h)
            stashes.append(stash)
        return x + h, stashes

    def backward(self, dy: np.ndarray, stash: object) -> np.ndarray:
        dh = dy
        for layer, s in zip(reversed(self.inner), reversed(stash)):
            dh = layer.backward(dh, s)
        return dy + dh


class CrossEntropyHead(Layer):
    """Softmax + mean cross-entropy against integer targets.

    ``forward`` needs the targets first (:meth:`set_targets`); output is a
    1-element loss array so it chains like any other layer.  The total
    weight used for the mean is set by the executor so microbatched runs
    scale partial losses/gradients by the *full* batch size.
    """

    def __init__(self):
        self.targets: Optional[np.ndarray] = None
        self.total_weight: Optional[int] = None

    def set_targets(self, targets: np.ndarray, total_weight: int) -> None:
        self.targets = targets
        self.total_weight = total_weight

    def forward(self, logits: np.ndarray) -> tuple[np.ndarray, object]:
        if self.targets is None or self.total_weight is None:
            raise RuntimeError("set_targets() must be called before forward")
        shifted = logits - logits.max(axis=-1, keepdims=True)
        logprobs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        picked = logprobs[np.arange(len(self.targets)), self.targets]
        loss = -picked.sum() / self.total_weight
        probs = np.exp(logprobs)
        return np.array([loss]), (probs, self.targets, self.total_weight)

    def backward(self, dy: np.ndarray, stash: object) -> np.ndarray:
        probs, targets, total = stash
        grad = probs.copy()
        grad[np.arange(len(targets)), targets] -= 1.0
        return dy[0] * grad / total
