"""Deterministic synthetic datasets.

The convergence-equality experiments need a fixed data stream, not a
particular corpus, so we substitute GLUE/MRPC and WikiText with seeded
synthetic tasks of the same type: a learnable binary sentence-pair-style
classification, and a learnable next-token-style multiclass prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """Features, integer targets, and an eval split."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_eval: np.ndarray
    y_eval: np.ndarray
    n_classes: int

    def minibatches(self, batch_size: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Deterministic pass over the training set in fixed order."""
        for start in range(0, len(self.x_train) - batch_size + 1, batch_size):
            stop = start + batch_size
            yield self.x_train[start:stop], self.y_train[start:stop]


def _make(n_train: int, n_eval: int, features: int, n_classes: int,
          noise: float, seed: int) -> Dataset:
    rng = np.random.default_rng(seed)
    total = n_train + n_eval
    x = rng.normal(size=(total, features))
    planes = rng.normal(size=(features, n_classes))
    scores = x @ planes + noise * rng.normal(size=(total, n_classes))
    y = scores.argmax(axis=-1)
    return Dataset(
        x_train=x[:n_train],
        y_train=y[:n_train],
        x_eval=x[n_train:],
        y_eval=y[n_train:],
        n_classes=n_classes,
    )


def synthetic_mrpc(n_train: int = 512, n_eval: int = 256, features: int = 32,
                   seed: int = 7) -> Dataset:
    """Binary classification standing in for MRPC paraphrase detection."""
    return _make(n_train, n_eval, features, n_classes=2, noise=0.3, seed=seed)


def synthetic_wikitext(n_train: int = 512, n_eval: int = 256, features: int = 32,
                       vocab: int = 50, seed: int = 11) -> Dataset:
    """Next-token-style multiclass prediction standing in for WikiText."""
    return _make(n_train, n_eval, features, n_classes=vocab, noise=0.5, seed=seed)
