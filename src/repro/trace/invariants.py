"""Assertable invariants over a recorded execution trace.

These are the properties the Harmony runtime *must* exhibit on every
completed run, fault or no fault -- the test suite's autouse fixture
checks them for every graph any test executes, and ``repro.cli trace``
validates them before writing an export:

- **span exclusivity / FIFO**: ops on one stream never overlap and
  complete in submission order (a CUDA stream is a serial queue);
  compute attempts on one GPU never overlap;
- **dependency order**: a task's compute begins only after the trace
  shows its producers' completion events (per-microbatch where the
  executor pipelines per microbatch, task-level for state, flush-level
  for host-staged reads);
- **byte reconciliation**: bytes moved by transfer spans agree with the
  run's :class:`~repro.runtime.metrics.RunMetrics` swap/p2p accounting;
- **busy reconciliation**: compute span time agrees with the aggregate
  ``compute_busy`` counters;
- **fault-event completeness**: every injected fault and every recovery
  action appears as exactly one trace event and vice versa -- no silent
  recoveries, no phantom events.

All failures raise :class:`TraceInvariantError` naming the offending
events with the same ``t<tid>`` / ``gpu<d>.<lane>`` identifiers the
static analyzer and runtime diagnostics use.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Optional, Sequence

from repro.core.taskgraph import mb_dependency
from repro.core.types import Channel, TaskGraph, TensorKind
from repro.trace.events import TraceEvent

_EPS = 1e-9
_PER_TASK_TENSORS = frozenset({TensorKind.W, TensorKind.DW, TensorKind.K})
_SWAP_LANES = ("swap_in", "swap_out")


class TraceInvariantError(AssertionError):
    """A recorded trace violates a runtime invariant."""


def _fail(message: str) -> None:
    raise TraceInvariantError(message)


# -- structural invariants ----------------------------------------------------------


def check_stream_exclusivity(events: Sequence[TraceEvent]) -> None:
    """Stream-op spans on one (device, lane) are disjoint and FIFO."""
    tracks: dict = defaultdict(list)
    for e in events:
        if e.kind == "span" and e.cat == "stream":
            tracks[(e.device, e.lane)].append(e)
    for (device, lane), spans in tracks.items():
        ordered = sorted(spans, key=lambda e: e.seq)
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.t0 < prev.t1 - _EPS:
                _fail(
                    f"gpu{device}.{lane}: op {cur.name!r} started at "
                    f"{cur.t0:.6g}s while {prev.name!r} was still running "
                    f"(until {prev.t1:.6g}s) -- stream spans must not overlap"
                )
            if cur.t0 < prev.t0 - _EPS:
                _fail(
                    f"gpu{device}.{lane}: op {cur.name!r} ran before "
                    f"earlier-submitted {prev.name!r} -- FIFO order broken"
                )


def check_compute_exclusivity(events: Sequence[TraceEvent]) -> None:
    """Kernel attempts on one GPU's compute lane never overlap."""
    per_device: dict = defaultdict(list)
    for e in events:
        if e.kind == "span" and e.cat == "compute" and e.lane == "compute":
            per_device[e.device].append(e)
    for device, spans in per_device.items():
        ordered = sorted(spans, key=lambda e: (e.t0, e.seq))
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.t0 < prev.t1 - _EPS:
                _fail(
                    f"gpu{device}.compute: {cur.name!r} ([{cur.t0:.6g}, "
                    f"{cur.t1:.6g}]s) overlaps {prev.name!r} "
                    f"([{prev.t0:.6g}, {prev.t1:.6g}]s)"
                )


# -- dependency order ---------------------------------------------------------------


def _first_attempt_computes(events: Sequence[TraceEvent]) -> dict:
    """(tid, mb) -> start times of first-attempt compute spans, in order."""
    out: dict = defaultdict(list)
    for e in sorted(events, key=lambda e: e.seq):
        if e.kind != "span" or e.cat != "compute":
            continue
        meta = e.meta_dict()
        if int(meta.get("attempt", 0)) != 0:
            continue
        out[(e.tid, int(meta.get("mb", 0)))].append(e.t0)
    return out


def _task_instants(events: Sequence[TraceEvent]) -> dict:
    """(tid, name) -> fire times of task lifecycle instants, in order."""
    out: dict = defaultdict(list)
    for e in sorted(events, key=lambda e: e.seq):
        if e.kind == "instant" and e.cat == "task":
            out[(e.tid, e.name)].append(e.t0)
    return out


def check_dependencies(events: Sequence[TraceEvent],
                       graph: TaskGraph) -> None:
    """Every compute span starts at/after its producers' trace events.

    Mirrors the executor's dependency rules
    (:meth:`repro.runtime.executor.Executor._dep_event`): host-staged
    reads wait for the producer's flush, state tensors for the producer's
    completion, pipelined activations for the producing microbatch.
    Occurrences pair up positionally across iterations.
    """
    computes = _first_attempt_computes(events)
    instants = _task_instants(events)
    for task in graph.tasks:
        for move in task.ins:
            if move.src_task is None:
                continue
            producer = graph[move.src_task]
            if task.on_cpu or move.channel is Channel.SWAP:
                self_deps = {None: "flushed"}
            elif move.tensor in _PER_TASK_TENSORS:
                self_deps = {None: "done"}
            elif producer.group_samples != task.group_samples:
                self_deps = {None: "done"}
            else:
                dep_map = mb_dependency(producer.microbatches,
                                        task.microbatches)
                self_deps = {i: f"mb{dep_map[i]}"
                             for i in range(len(task.microbatches))}
            for mb, dep_name in self_deps.items():
                dep_times = instants.get((producer.tid, dep_name), [])
                if not dep_times:
                    continue  # producer events evicted (ring) or unfired
                mbs = ([mb] if mb is not None else sorted(
                    i for t, i in computes if t == task.tid
                ))
                for i in mbs:
                    starts = computes.get((task.tid, i), [])
                    for k, start in enumerate(starts):
                        if k >= len(dep_times):
                            break
                        if start < dep_times[k] - _EPS:
                            _fail(
                                f"t{task.tid} mb{i} computed at "
                                f"{start:.6g}s before its dependency "
                                f"t{producer.tid}.{dep_name} fired at "
                                f"{dep_times[k]:.6g}s (move "
                                f"{move.label!r}, occurrence {k})"
                            )


# -- accounting reconciliation -----------------------------------------------------


def check_bytes(events: Sequence[TraceEvent], metrics,
                iterations: int = 1) -> None:
    """Transfer-span bytes reconcile with RunMetrics swap/p2p totals.

    Multi-iteration metrics are per-iteration floor-divided averages, so
    the tolerance is the worst-case rounding loss across counters.
    """
    swap = p2p = 0
    for e in events:
        if e.kind != "span" or e.cat != "xfer":
            continue
        if e.lane in _SWAP_LANES:
            swap += e.nbytes
        elif e.lane.startswith("p2p"):
            p2p += e.nbytes
    n = len(metrics.gpus)
    swap_tol = 2 * n * max(0, iterations - 1)
    p2p_tol = n * max(0, iterations - 1)
    expected_swap = metrics.global_swap_bytes * iterations
    if abs(swap - expected_swap) > swap_tol:
        _fail(
            f"trace swap bytes {swap} != metrics global swap "
            f"{metrics.global_swap_bytes} x {iterations} iteration(s) "
            f"(tolerance {swap_tol})"
        )
    expected_p2p = metrics.global_p2p_bytes * iterations
    if abs(p2p - expected_p2p) > p2p_tol:
        _fail(
            f"trace p2p bytes {p2p} != metrics global p2p "
            f"{metrics.global_p2p_bytes} x {iterations} iteration(s) "
            f"(tolerance {p2p_tol})"
        )


def check_compute_busy(events: Sequence[TraceEvent], metrics,
                       iterations: int = 1, rel: float = 1e-9) -> None:
    """Compute-span time per device reconciles with ``compute_busy``."""
    gpu_busy: Counter = Counter()
    cpu_busy: Counter = Counter()
    for e in events:
        if e.kind == "span" and e.cat == "compute":
            (cpu_busy if e.lane == "cpu" else gpu_busy)[e.device] += (
                e.duration
            )
    for device, g in enumerate(metrics.gpus):
        for measured, aggregate, what in (
            (gpu_busy.get(device, 0.0), g.compute_busy, "compute"),
            (cpu_busy.get(device, 0.0), g.cpu_busy, "cpu"),
        ):
            expected = aggregate * iterations
            tol = rel * max(1.0, abs(expected))
            if abs(measured - expected) > tol:
                _fail(
                    f"gpu{device} trace {what} busy {measured!r}s != "
                    f"aggregate {aggregate!r}s x {iterations} iteration(s)"
                )


def check_network_reconciliation(events: Sequence[TraceEvent],
                                 link_bytes: dict) -> None:
    """Per-network-link byte totals from cluster-lane transfer spans
    reconcile exactly with the fabric's own counters.

    ``link_bytes`` maps network link names to the bytes the cluster
    runner read back from the fabric's :class:`~repro.sim.links.Link`
    counters; every cross-server transfer span (``cat == "xfer"`` on the
    ``cluster`` lane) names its hops in the ``links`` meta, so each hop's
    traced total must equal the counter -- a transfer recorded but not
    accounted (or vice versa) fails here.
    """
    seen: Counter = Counter()
    for e in events:
        if e.kind != "span" or e.cat != "xfer" or e.lane != "cluster":
            continue
        links = e.meta_dict().get("links", "")
        if not links:
            continue
        for name in links.split("+"):
            seen[name] += e.nbytes
    for name in sorted(set(seen) | set(link_bytes)):
        traced = seen.get(name, 0)
        counted = link_bytes.get(name, 0)
        if traced != counted:
            _fail(
                f"network link {name!r}: trace shows {traced} bytes, "
                f"fabric counted {counted} -- cluster byte "
                f"reconciliation broken"
            )


# -- fault-event completeness -------------------------------------------------------


def check_fault_events(events: Sequence[TraceEvent], metrics,
                       elastic: bool = True) -> None:
    """Injected faults and recovery actions match trace events 1:1.

    Equality is checked in both directions: a counter without its events
    means silent recovery; events without counters mean phantom faults.
    """
    counts: Counter = Counter()
    migrations = 0
    for e in events:
        if e.kind == "instant":
            if e.cat in ("fault", "rebind", "restart", "replan"):
                counts[e.cat] += 1
            elif e.cat in ("retry", "fallback"):
                counts[(e.cat, e.name)] += 1
        elif e.kind == "span" and e.cat == "migration":
            migrations += 1
    rec = metrics.recovery
    expectations = [
        ("fault deliveries", counts["fault"], rec.faults_injected),
        ("transfer retries", counts[("retry", "transfer")],
         rec.transfer_retries),
        ("compute retries", counts[("retry", "compute")],
         rec.compute_retries),
        ("p2p fallbacks", counts[("fallback", "p2p")], rec.p2p_fallbacks),
        ("rebinds", counts["rebind"], rec.rebinds),
        ("restarts", counts["restart"], rec.restarts),
    ]
    if elastic:
        expectations += [
            ("replans", counts["replan"], metrics.elastic.replans),
            ("migration moves", migrations, metrics.elastic.migrations),
        ]
    for what, traced, counted in expectations:
        if traced != counted:
            _fail(
                f"{what}: trace shows {traced}, metrics counted {counted} "
                f"-- {'silent recovery' if traced < counted else 'phantom events'}"
            )


# -- the full battery --------------------------------------------------------------


def check_trace(
    events: Sequence[TraceEvent],
    graph: Optional[TaskGraph] = None,
    metrics=None,
    iterations: int = 1,
    dropped: int = 0,
    fault_events: bool = True,
) -> None:
    """Run every applicable invariant over ``events``.

    ``graph`` enables the dependency check; ``metrics`` enables byte /
    busy / fault-event reconciliation.  A ring-mode trace that dropped
    events (``dropped > 0``) keeps only the structural checks --
    accounting cannot reconcile against half a timeline.
    """
    check_stream_exclusivity(events)
    check_compute_exclusivity(events)
    if dropped:
        return
    if graph is not None:
        check_dependencies(events, graph)
    if metrics is not None:
        check_bytes(events, metrics, iterations=iterations)
        check_compute_busy(events, metrics, iterations=iterations)
        if fault_events:
            check_fault_events(events, metrics)
