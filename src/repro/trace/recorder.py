"""The trace recorder: collects events, optionally as a bounded ring.

A recorder attaches to a simulator as ``sim.trace``; traced layers call
:meth:`span` / :meth:`instant` only after checking the attribute, so an
unattached run does no recording work at all.

The recorder owns a *base* time offset.  Runs that span several
simulators -- the fault-tolerant runner restarts each iteration attempt
on a fresh simulator whose clock starts at zero, and state migrations run
on their own simulator too -- advance the base by each phase's virtual
duration, so the recorded events form one continuous global timeline.

Ring mode (``ring=N``) keeps only the newest ``N`` events and counts the
rest in :attr:`dropped`; memory stays bounded no matter how long the run.
Analytics and invariants over a ring see only the surviving suffix.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.trace.events import TraceEvent, make_meta


class TraceRecorder:
    """Collects :class:`TraceEvent` records in arrival order."""

    def __init__(self, ring: Optional[int] = None):
        if ring is not None and ring < 1:
            raise ValueError(f"ring capacity must be >= 1, got {ring}")
        self.ring = ring
        self._events: deque = deque(maxlen=ring)
        #: global time offset added to every recorded timestamp
        self.base = 0.0
        #: events evicted by ring mode
        self.dropped = 0
        #: largest (base-adjusted) end time seen, even for evicted events
        self.extent = 0.0
        self._seq = 0

    # -- recording ---------------------------------------------------------------

    def span(self, cat: str, name: str, t0: float, t1: float, *,
             device: int = -1, lane: str = "", tid: int = -1,
             nbytes: int = 0, **meta) -> TraceEvent:
        """Record an interval event (local times; base applied here)."""
        return self._record(TraceEvent(
            kind="span", cat=cat, name=name,
            t0=self.base + t0, t1=self.base + t1,
            device=device, lane=lane, tid=tid, nbytes=nbytes,
            seq=self._next_seq(), meta=make_meta(**meta),
        ))

    def instant(self, cat: str, name: str, t: float, *,
                device: int = -1, lane: str = "", tid: int = -1,
                nbytes: int = 0, **meta) -> TraceEvent:
        """Record a point event (local time; base applied here)."""
        return self._record(TraceEvent(
            kind="instant", cat=cat, name=name,
            t0=self.base + t, t1=self.base + t,
            device=device, lane=lane, tid=tid, nbytes=nbytes,
            seq=self._next_seq(), meta=make_meta(**meta),
        ))

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _record(self, event: TraceEvent) -> TraceEvent:
        if self.ring is not None and len(self._events) == self.ring:
            self.dropped += 1
        self._events.append(event)
        if event.t1 > self.extent:
            self.extent = event.t1
        return event

    # -- multi-simulator stitching ------------------------------------------------

    def advance(self, dt: float) -> None:
        """Shift the base: the next simulator phase starts ``dt`` later."""
        if dt < 0:
            raise ValueError(f"cannot advance the trace base by {dt}")
        self.base += dt

    # -- access ------------------------------------------------------------------

    @property
    def events(self) -> list:
        """The surviving events, in record order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self.base = 0.0
        self.extent = 0.0
        self._seq = 0

    def canonical(self) -> str:
        """One line per event -- the golden-trace file format."""
        return "\n".join(e.canonical() for e in self._events)
