"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and plain text.

The JSON format is the Trace Event Format that chrome://tracing and
https://ui.perfetto.dev load directly: a ``traceEvents`` list of complete
(``ph: "X"``) and instant (``ph: "i"``) events with microsecond
timestamps, plus ``M``-phase metadata naming processes (devices) and
threads (lanes).  Devices map to pids (``gpu<d>`` -> ``d + 1``; host and
run-level events -> pid 0), lanes to tids.
"""

from __future__ import annotations

import json
import os
from typing import IO, Sequence, Union

from repro.trace.events import LANES, TraceEvent

#: 1 virtual second -> microseconds (the trace_event time unit).
_US = 1e6


def _pid(event: TraceEvent) -> int:
    return event.device + 1 if event.device >= 0 else 0


def _lane_key(event: TraceEvent) -> tuple:
    return (_pid(event), event.lane or event.cat)


def to_chrome_trace(events: Sequence[TraceEvent]) -> dict:
    """Build the trace_event JSON document (as a dict)."""
    lanes = sorted(
        {_lane_key(e) for e in events},
        key=lambda key: (
            key[0],
            LANES.index(key[1]) if key[1] in LANES else len(LANES),
            key[1],
        ),
    )
    tids = {key: i + 1 for i, key in enumerate(lanes)}
    out = []
    pids = sorted({pid for pid, _lane in lanes})
    for pid in pids:
        out.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": "host" if pid == 0 else f"gpu{pid - 1}"},
        })
    for (pid, lane), tid in tids.items():
        out.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": lane},
        })
    for e in events:
        args = {k: v for k, v in e.meta}
        if e.tid >= 0:
            args["task"] = e.tid
        if e.nbytes:
            args["nbytes"] = e.nbytes
        record = {
            "name": e.name or e.cat,
            "cat": e.cat,
            "pid": _pid(e),
            "tid": tids[_lane_key(e)],
            "ts": e.t0 * _US,
            "args": args,
        }
        if e.kind == "span":
            record["ph"] = "X"
            record["dur"] = max(0.0, e.duration) * _US
        else:
            record["ph"] = "i"
            record["s"] = "t"
        out.append(record)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def dump_chrome_trace(events: Sequence[TraceEvent],
                      fp: Union[str, IO]) -> None:
    """Write the Chrome-trace JSON to a path or file object."""
    doc = to_chrome_trace(events)
    if isinstance(fp, (str, os.PathLike)):
        with open(fp, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
    else:
        json.dump(doc, fp, indent=1)


def to_text_timeline(events: Sequence[TraceEvent], width: int = 56) -> str:
    """A per-lane ASCII timeline (the poor man's Perfetto).

    One row per (device, lane) track: a bar over the trace extent where
    ``#`` marks busy span time and ``.`` idle, followed by the busy
    fraction and op count.  Instant control events are listed below.
    """
    extent = max((e.t1 for e in events), default=0.0)
    if extent <= 0:
        return "(empty trace)"
    rows: dict = {}
    counts: dict = {}
    for e in events:
        if e.kind != "span" or e.cat == "stream":
            # The stream-queue view nests every other span; the busy view
            # (xfer/compute/migration) is what the bars should show.
            continue
        key = (_pid(e), e.lane or e.cat)
        rows.setdefault(key, [False] * width)
        counts[key] = counts.get(key, 0) + 1
        lo = int(e.t0 / extent * width)
        hi = max(lo + 1, int(e.t1 / extent * width + 0.999))
        for i in range(lo, min(hi, width)):
            rows[key][i] = True
    lines = [f"timeline over {extent:.3f}s ('#' = busy):"]
    for (pid, lane), cells in sorted(
        rows.items(),
        key=lambda item: (
            item[0][0],
            LANES.index(item[0][1]) if item[0][1] in LANES else len(LANES),
            item[0][1],
        ),
    ):
        owner = "host" if pid == 0 else f"gpu{pid - 1}"
        bar = "".join("#" if cell else "." for cell in cells)
        busy = sum(cells) / width
        lines.append(
            f"  {owner + '.' + lane:<16} |{bar}| "
            f"{busy * 100:3.0f}% busy, {counts[(pid, lane)]} spans"
        )
    control = [
        e for e in events
        if e.kind == "instant" and e.cat in ("fault", "rebind", "replan",
                                             "restart", "fallback")
    ]
    for e in control[:12]:
        lines.append(f"  @{e.t0:.3f}s {e.cat}: {e.name}")
    if len(control) > 12:
        lines.append(f"  ... +{len(control) - 12} more control events")
    return "\n".join(lines)
