"""Execution tracing: typed event timelines for every simulated run.

The subsystem has four parts:

- :mod:`repro.trace.events` / :mod:`repro.trace.recorder` -- the
  :class:`TraceEvent` record and the :class:`TraceRecorder` that collects
  them (optionally as a bounded ring).  A recorder attaches to a
  :class:`~repro.sim.engine.Simulator` as ``sim.trace``; every traced
  layer guards on ``sim.trace is not None``, so a run without a recorder
  pays nothing and is bit-identical to the pre-trace runtime.
- :mod:`repro.trace.export` -- exporters to Chrome/Perfetto
  ``trace_event`` JSON (load the file at https://ui.perfetto.dev) and a
  plain-text timeline dump.
- :mod:`repro.trace.analytics` -- derived timeline analytics: per-stream
  utilization, compute/swap overlap, pipeline bubbles, link contention.
  :func:`analyze_trace` folds them into a :class:`TraceAnalytics` that
  :class:`~repro.runtime.metrics.RunMetrics` carries and describes.
- :mod:`repro.trace.invariants` -- assertable trace invariants (span
  exclusivity, FIFO order, dependency ordering, byte reconciliation,
  fault-event completeness) used by the test harness and ``repro.cli
  trace --validate``.
"""

from repro.trace.analytics import TraceAnalytics, analyze_trace
from repro.trace.events import TraceEvent
from repro.trace.export import dump_chrome_trace, to_chrome_trace, to_text_timeline
from repro.trace.invariants import (
    TraceInvariantError,
    check_network_reconciliation,
    check_trace,
)
from repro.trace.recorder import TraceRecorder

__all__ = [
    "TraceAnalytics",
    "TraceEvent",
    "TraceInvariantError",
    "TraceRecorder",
    "analyze_trace",
    "check_network_reconciliation",
    "check_trace",
    "dump_chrome_trace",
    "to_chrome_trace",
    "to_text_timeline",
]
