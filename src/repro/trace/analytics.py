"""Derived timeline analytics over a recorded trace.

Everything here is computed from event intervals, not from aggregate
counters -- that is the point: the aggregate path (``compute_busy`` /
``iteration_time``) cannot see *when* work happened, so it cannot measure
overlap, bubbles, or contention.  :func:`analyze_trace` produces a
:class:`TraceAnalytics` that :class:`~repro.runtime.metrics.RunMetrics`
attaches and folds into ``describe()``.

Definitions:

- **stream utilization**: measure of the union of ``stream``-cat spans on
  a (device, lane) track, over the trace extent;
- **compute busy**: measure of the union of ``compute``-cat spans per
  device (crashed attempts included -- the GPU really ran them);
- **compute/swap overlap**: measure of (union of compute spans) INTERSECT
  (union of swap-lane ``xfer`` holds) per device; the *fraction* is over
  the swap hold time -- "how much of my swapping hid under compute";
- **pipeline bubble**: idle compute time inside a device's active window
  [first compute start, last compute end];
- **link contention**: per link, time some transfer spent waiting on the
  path while the link was held by another transfer (approximate: a
  multi-hop wait is attributed to every busy hop of the path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.trace.events import TraceEvent

_SWAP_LANES = ("swap_in", "swap_out")


def _union(intervals: Iterable[tuple]) -> list:
    """Merge intervals into a sorted disjoint list."""
    merged: list = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _measure(intervals: Sequence[tuple]) -> float:
    return sum(end - start for start, end in intervals)


def _intersect(a: Sequence[tuple], b: Sequence[tuple]) -> list:
    """Intersection of two disjoint sorted interval lists."""
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


@dataclass
class LinkContention:
    """Contention summary for one link."""

    busy: float = 0.0          # seconds the link was held
    contended: float = 0.0     # seconds somebody waited while it was held
    intervals: int = 0         # distinct (transfer, link) wait overlaps


@dataclass
class TraceAnalytics:
    """Timeline-derived figures for one traced run."""

    total_time: float
    n_devices: int
    n_events: int
    dropped: int = 0
    #: per-device busy seconds of compute spans (crashes included)
    compute_busy: list = field(default_factory=list)
    #: per-device busy seconds of host-offloaded update spans
    cpu_busy: list = field(default_factory=list)
    #: per-device {lane: union-measure of stream-op spans}
    stream_busy: list = field(default_factory=list)
    #: per-device union-measure of swap-lane transfer holds
    swap_hold: list = field(default_factory=list)
    #: per-device union-measure of p2p-lane transfer holds
    p2p_hold: list = field(default_factory=list)
    #: per-device compute INTERSECT swap-hold seconds
    overlap_time: list = field(default_factory=list)
    #: per-device idle-compute seconds inside the active compute window
    bubble_time: list = field(default_factory=list)
    #: {link name: LinkContention}
    link_contention: dict = field(default_factory=dict)

    def idle_fraction(self, device: int) -> float:
        if self.total_time <= 0:
            return 0.0
        return max(0.0, 1.0 - self.compute_busy[device] / self.total_time)

    def overlap_fraction(self, device: int) -> float:
        """Fraction of the device's swap hold time hidden under compute."""
        if self.swap_hold[device] <= 0:
            return 0.0
        return self.overlap_time[device] / self.swap_hold[device]

    def stream_utilization(self, device: int, lane: str) -> float:
        if self.total_time <= 0:
            return 0.0
        return self.stream_busy[device].get(lane, 0.0) / self.total_time

    @property
    def contended_links(self) -> list:
        """(name, contention) for every link that saw any waiting."""
        return sorted(
            (
                (name, c) for name, c in self.link_contention.items()
                if c.contended > 0
            ),
            key=lambda item: -item[1].contended,
        )

    def describe(self) -> str:
        lines = [
            f"trace: {self.n_events} events over {self.total_time:.3f}s"
            + (f" ({self.dropped} dropped by ring)" if self.dropped else "")
        ]
        for d in range(self.n_devices):
            lines.append(
                f"  gpu{d}: compute {self.compute_busy[d]:.3f}s "
                f"(idle {self.idle_fraction(d) * 100:.0f}%, "
                f"bubble {self.bubble_time[d]:.3f}s), "
                f"swap hold {self.swap_hold[d]:.3f}s "
                f"(overlap {self.overlap_fraction(d) * 100:.0f}%), "
                f"p2p hold {self.p2p_hold[d]:.3f}s"
            )
        contended = self.contended_links
        if contended:
            worst = ", ".join(
                f"{name} {c.contended:.3f}s/{c.intervals}x"
                for name, c in contended[:4]
            )
            lines.append(f"  link contention: {worst}")
        return "\n".join(lines)


def analyze_trace(events: Sequence[TraceEvent], n_devices: int,
                  total_time: float = 0.0,
                  dropped: int = 0) -> TraceAnalytics:
    """Compute :class:`TraceAnalytics` over recorded events."""
    if total_time <= 0:
        total_time = max((e.t1 for e in events), default=0.0)
    compute: list = [[] for _ in range(n_devices)]
    cpu: list = [[] for _ in range(n_devices)]
    stream: list = [dict() for _ in range(n_devices)]
    swap: list = [[] for _ in range(n_devices)]
    p2p: list = [[] for _ in range(n_devices)]
    xfers = []
    for e in events:
        if e.kind != "span":
            continue
        d = e.device
        on_device = 0 <= d < n_devices
        if e.cat == "compute" and on_device:
            (cpu if e.lane == "cpu" else compute)[d].append((e.t0, e.t1))
        elif e.cat == "stream" and on_device:
            stream[d].setdefault(e.lane, []).append((e.t0, e.t1))
        elif e.cat == "xfer":
            xfers.append(e)
            if on_device:
                if e.lane in _SWAP_LANES:
                    swap[d].append((e.t0, e.t1))
                elif e.lane.startswith("p2p"):
                    p2p[d].append((e.t0, e.t1))

    out = TraceAnalytics(
        total_time=total_time, n_devices=n_devices,
        n_events=len(events), dropped=dropped,
    )
    for d in range(n_devices):
        comp = _union(compute[d])
        swp = _union(swap[d])
        out.compute_busy.append(_measure(comp))
        out.cpu_busy.append(_measure(_union(cpu[d])))
        out.stream_busy.append({
            lane: _measure(_union(spans))
            for lane, spans in sorted(stream[d].items())
        })
        out.swap_hold.append(_measure(swp))
        out.p2p_hold.append(_measure(_union(p2p[d])))
        out.overlap_time.append(_measure(_intersect(comp, swp)))
        if comp:
            window = comp[-1][1] - comp[0][0]
            out.bubble_time.append(max(0.0, window - _measure(comp)))
        else:
            out.bubble_time.append(0.0)
    out.link_contention = _contention(xfers)
    return out


def _contention(xfers: Sequence[TraceEvent]) -> dict:
    """Per-link busy/contended time from transfer hold spans.

    A transfer's wait interval is ``[t0 - wait, t0)``; its overlap with
    *other* transfers' holds of a shared link is contention on that link.
    """
    holds: dict = {}
    for e in xfers:
        for link in _links_of(e):
            holds.setdefault(link, []).append((e.t0, e.t1, e.seq))
    out: dict = {}
    for link, spans in holds.items():
        c = LinkContention(busy=_measure([(s, t) for s, t, _ in spans]))
        out[link] = c
    for e in xfers:
        meta = e.meta_dict()
        wait = float(meta.get("wait", 0.0))
        if wait <= 0:
            continue
        w0, w1 = e.t0 - wait, e.t0
        for link in _links_of(e):
            overlap = _measure(_intersect(
                [(w0, w1)],
                _union([(s, t) for s, t, seq in holds[link]
                        if seq != e.seq]),
            ))
            if overlap > 0:
                out[link].contended += overlap
                out[link].intervals += 1
    return out


def _links_of(event: TraceEvent) -> list:
    links = event.meta_dict().get("links", "")
    return [name for name in str(links).split("+") if name]
