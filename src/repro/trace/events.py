"""The typed trace event record and its taxonomy.

Every event is either a *span* (``t0 <= t1``: an interval during which a
stream op ran, a transfer held its links, a kernel computed, a migration
move was in flight) or an *instant* (``t0 == t1``: a fault delivery, a
retry, a task-lifecycle tick, a rebind/replan/restart decision).

Categories (``cat``):

========== ======= ====================================================
category   kind    meaning
========== ======= ====================================================
stream     span    one queued op on a CUDA-stream analog (queue view:
                   includes time the op spent waiting inside)
xfer       span    one link-path hold by a transfer (busy view; the
                   ``links`` meta names the hops, ``wait`` the queueing
                   delay before acquisition, faulted holds move 0 bytes)
compute    span    one kernel-group / weight-update attempt's busy time
migration  span    one elastic state-migration move
fault      instant a fault delivery by the chaos injector (name is the
                   :class:`~repro.faults.plan.FaultKind` value)
retry      instant a recovery retry (``transfer`` or ``compute``)
fallback   instant a p2p -> host-staged reroute decision
task       instant task lifecycle: ``mb<i>`` / ``done`` / ``flushed``
rebind     instant a late-binding device rescue at an iteration boundary
replan     instant an elastic re-plan on a survivor subset
restart    instant an iteration-boundary checkpoint restart
service    span    one service request's arrival -> resolution window;
                   instants mark arrivals, planner crashes/timeouts and
                   breaker denials (:mod:`repro.service`)
cluster    span    one per-server compute phase of a cluster iteration;
                   instants mark cluster-level control and fault events
                   (server crash, partition stall/heal, cluster replan,
                   stage shrink, replica restore) -- :mod:`repro.cluster`
fleet      span    one fleet reservation's placement -> release window
                   (meta names the server, devices and bind kind);
                   instants mark placement decisions -- :mod:`repro.fleet`
========== ======= ====================================================

Lanes (``lane``) name the per-device track an event belongs to: the five
stream names (``compute``, ``swap_in``, ``swap_out``, ``p2p_in``,
``p2p_out``), ``cpu`` for host-offloaded updates, ``run`` for run-level
control events (rebind/replan/restart), ``service`` for planning-daemon
request lifecycles, ``cluster`` for cross-server traffic and control
(device ``-1``: the fabric is nobody's GPU), or ``fleet`` for the
multi-tenant placer's capacity holds.  Cross-server ``xfer`` spans
ride the ``cluster`` lane so they never pollute per-server swap/p2p byte
reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Lanes the per-device timeline knows about, in display order.
LANES = ("compute", "swap_in", "swap_out", "p2p_in", "p2p_out", "cpu", "run",
         "migration", "service", "cluster", "fleet")


@dataclass(frozen=True)
class TraceEvent:
    """One timeline event.  Immutable; ``meta`` is a sorted k/v tuple."""

    kind: str                  # "span" | "instant"
    cat: str                   # taxonomy above
    name: str                  # human label (move label, task label, ...)
    t0: float                  # virtual seconds (recorder base applied)
    t1: float                  # == t0 for instants
    device: int = -1           # owning GPU, -1 for host/run-level
    lane: str = ""             # track within the device
    tid: int = -1              # task id, -1 when not task-scoped
    nbytes: int = 0            # bytes actually moved (0 for faulted holds)
    seq: int = 0               # recorder-assigned global sequence number
    meta: tuple = ()           # extra ((key, value), ...), sorted by key

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def meta_dict(self) -> dict:
        return dict(self.meta)

    def canonical(self) -> str:
        """A stable one-line form (golden traces diff these).

        Times use ``repr`` (shortest round-trip float form, stable since
        CPython 3.1) so the line is bit-stable across runs and versions
        as long as the simulation itself is deterministic.
        """
        meta = ",".join(f"{k}={v}" for k, v in self.meta)
        return (
            f"{self.kind}|{self.cat}|{self.name}|dev{self.device}|"
            f"{self.lane}|t{self.tid}|{self.nbytes}|{self.t0!r}|{self.t1!r}"
            f"|{meta}"
        )


def make_meta(**kwargs) -> tuple:
    """Normalize keyword metadata into the sorted-tuple form."""
    return tuple(sorted(kwargs.items()))
