"""Virtual devices: logical plans late-bound onto physical hardware.

``Harmony.plan`` targets *logical* GPUs; :func:`bind` maps the finished
plan onto a physical topology -- identical hardware (bit-identical
execution), fewer devices (deterministic time-slice multiplexing), or a
heterogeneous FLOPs/memory mix (rescaled timing, per-device capacity
re-certification).  See DESIGN.md §15.

    >>> from repro.virt import DeviceBinding
    >>> binding = DeviceBinding.heterogeneous([1.5, 1.5, 0.75, 0.75])
    >>> bound = harmony.bind(binding)          # doctest: +SKIP
    >>> harmony.run(plan=bound)                # doctest: +SKIP
"""

from repro.virt.bind import BoundPlan, bind, physical_server, verify_bound
from repro.virt.devices import (
    DeviceBinding,
    LogicalDevice,
    PhysicalDevice,
    VirtualTopology,
    apply_device_mapping,
    remap_move,
    server_fingerprint,
)
from repro.virt.timemodel import ScaledTimeModel

__all__ = [
    "BoundPlan",
    "DeviceBinding",
    "LogicalDevice",
    "PhysicalDevice",
    "ScaledTimeModel",
    "VirtualTopology",
    "apply_device_mapping",
    "bind",
    "physical_server",
    "remap_move",
    "server_fingerprint",
    "verify_bound",
]
