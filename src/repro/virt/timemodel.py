"""Per-physical-device FLOPs rescaling around any base time model.

A heterogeneous bind changes how fast each physical GPU computes, not
what the tasks are: :class:`ScaledTimeModel` wraps the planned time model
and divides every GPU-side duration by the bound device's FLOPs scale.
Scale ``1.0`` is an exact passthrough (no division), so identity binds
stay bit-identical to unbound runs.  Host-side work (CPU optimizer
updates) is unscaled -- the host did not change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.types import Task

if TYPE_CHECKING:
    from repro.virt.devices import DeviceBinding


class ScaledTimeModel:
    """Wraps a time model; durations scale by the task's bound device."""

    def __init__(self, base: object, binding: "DeviceBinding"):
        self.base = base
        self.binding = binding
        self._scales = binding.topology.flops_scales()

    def _scale(self, device: int) -> float:
        if 0 <= device < len(self._scales):
            return self._scales[device]
        return 1.0

    def microbatch_time(self, task: Task, u: int) -> float:
        t = self.base.microbatch_time(task, u)  # type: ignore[attr-defined]
        s = self._scale(task.device)
        return t if s == 1.0 else t / s

    def update_time(self, task: Task) -> float:
        t = self.base.update_time(task)  # type: ignore[attr-defined]
        if task.on_cpu:
            return t  # host optimizer lane: GPU speed is irrelevant
        s = self._scale(task.device)
        return t if s == 1.0 else t / s

    def task_compute_time(self, task: Task) -> float:
        from repro.core.types import TaskKind

        if task.kind is TaskKind.UPD:
            return self.update_time(task)
        return sum(self.microbatch_time(task, u)
                   for u in task.microbatches)

    def __getattr__(self, name: str):
        return getattr(self.base, name)
