"""Binding a Harmony plan onto physical hardware.

:func:`bind` is the late-binding step the tentpole split enables:
``Harmony.plan`` targets logical devices, and ``bind`` maps the finished
plan onto a :class:`~repro.virt.devices.VirtualTopology` -- identity,
time-sliced, or heterogeneous -- producing a :class:`BoundPlan` the
runtime can execute.  Every bind is re-certified by the static analyzer
against the *physical* machine: structural passes on the rewritten graph
(a time-slice bind must still be deadlock-free), plus capacity with
per-physical-device memory.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.core.types import TaskGraph
from repro.hardware.server import ServerSpec
from repro.virt.devices import DeviceBinding

if TYPE_CHECKING:
    from repro.analysis.diagnostics import AnalysisReport
    from repro.core.harmony import HarmonyPlan


def physical_server(base: ServerSpec, binding: DeviceBinding) -> ServerSpec:
    """The server spec the bound graph actually runs on.

    Same-count binds keep the planned spec (identity binds must be
    spec-identical, and heterogeneity is carried by the binding, not the
    spec); count-changing binds keep the per-GPU/host specs and resize
    the PCIe tree, mirroring ``Harmony.reduced_server``.
    """
    n = binding.n_physical
    if n == base.n_gpus:
        return base
    return ServerSpec(
        n_gpus=n,
        gpu=base.gpu,
        host=base.host,
        topology=replace(base.topology, n_gpus=n),
    )


@dataclass
class BoundPlan:
    """A logical plan mapped onto concrete hardware, analyzer-certified."""

    plan: "HarmonyPlan"
    binding: DeviceBinding
    graph: TaskGraph       # device bindings rewritten onto physical ids
    server: ServerSpec     # the physical machine (count-adjusted)
    report: Optional["AnalysisReport"] = None

    def describe(self) -> str:
        lines = [self.binding.describe()]
        if not self.binding.topology.is_uniform:
            lines.append(f"  topology: {self.binding.topology.describe()}")
        lines.append(
            f"  bound graph: {len(self.graph)} tasks on "
            f"{self.graph.n_devices} device(s)"
        )
        return "\n".join(lines)


def verify_bound(graph: TaskGraph, server: ServerSpec,
                 binding: DeviceBinding, *,
                 options: Optional[object] = None,
                 host_state_bytes: Optional[int] = None,
                 host_input_bytes: Optional[int] = None,
                 prefetch: bool = True) -> "AnalysisReport":
    """Strict analyzer run against the physical machine.

    Structural passes prove the rewritten graph is still well-formed and
    deadlock-free (the safety argument for time-slice multiplexing: one
    driver per physical device walks its merged task list in global tid
    order, so the analyzer's wait-graph check covers the interleaving);
    the capacity and parametric passes re-evaluate every per-device bound
    against that device's *scaled* memory.  Raises
    :class:`~repro.common.errors.ScheduleAnalysisError` on any error.
    """
    from repro.analysis import check

    return check(
        graph,
        server=server,
        options=options,  # type: ignore[arg-type]
        host_state_bytes=host_state_bytes,
        host_input_bytes=host_input_bytes,
        prefetch=prefetch,
        device_memory=binding.device_memory(server.gpu.memory_bytes),
    )


def bind(plan: "HarmonyPlan", binding: DeviceBinding, *,
         verify: bool = True) -> BoundPlan:
    """Map a logical plan onto physical hardware.

    Validates the shape (the binding must cover exactly the plan's
    logical device count), rewrites the graph, derives the physical
    server spec, and -- unless ``verify=False`` -- re-certifies the
    result with the strict analyzer before handing it to the runtime.
    """
    if binding.n_logical != plan.graph.n_devices:
        raise ValueError(
            f"binding covers {binding.n_logical} logical devices but the "
            f"plan targets {plan.graph.n_devices}"
        )
    graph = binding.apply(plan.graph)
    server = physical_server(plan.server, binding)
    report = None
    if verify:
        host_input = plan.minibatch * plan.model.sample_bytes
        report = verify_bound(
            graph, server, binding,
            options=plan.options.schedule_options(),
            host_state_bytes=plan.model.model_state_bytes + host_input,
            host_input_bytes=host_input,
            prefetch=plan.options.prefetch,
        )
    return BoundPlan(plan=plan, binding=binding, graph=graph,
                     server=server, report=report)
