"""Logical devices, physical devices, and the binding between them.

Harmony's task graphs are *late bound* (Section 4.3.2): tasks carry a
device binding, not an identity, so the schedule's structure (task order,
dependencies, move lists) is valid under any device assignment.  This
module makes the split explicit:

- :class:`LogicalDevice` -- the planning-time GPU identity ``0..k-1`` the
  Scheduler targets.  Logical devices are uniform by construction: the
  plan's capacity fit and timing model assume the server spec's GPU.
- :class:`PhysicalDevice` -- one real GPU, described *relative* to the
  planned spec by a FLOPs scale and a memory scale.  ``1.0/1.0`` is the
  planned GPU itself; ``1.5/1.0`` is a faster card with the same memory.
- :class:`VirtualTopology` -- the ordered set of physical devices a plan
  can be bound onto.
- :class:`DeviceBinding` -- a total map logical -> physical.  Identity
  bindings reproduce today's plans bit for bit; non-injective bindings
  time-slice several logical devices onto one physical GPU (the executor
  drives each device's task list in global tid order through one compute
  stream, so multiplexing is deterministic FIFO interleaving and needs no
  new engine machinery); heterogeneous topologies rescale task times and
  per-device memory, re-checked by the analyzer before execution.

The graph rewrite itself -- :func:`apply_device_mapping` -- is the single
implementation behind every rebind in the codebase; the elastic recovery
and relabel paths (:mod:`repro.elastic.rebind`) are thin validation
wrappers over it.  Kept free of runtime/scheduler imports so faults,
elastic, and service layers can use it without cycles.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from repro.core.types import Channel, Move, Task, TaskGraph


def remap_move(move: Move, task_device: dict[int, int],
               device_map: dict[int, int], new_device: int) -> Move:
    """Re-target one move after its task moved to ``new_device``."""
    peer = move.peer
    if peer is not None:
        peer = device_map.get(peer, peer)
    if move.channel is Channel.P2P:
        src = (
            task_device[move.src_task]
            if move.src_task is not None else peer
        )
        if src == new_device:
            # Producer and consumer collapsed onto one device: the
            # transfer disappears (the analyzer rejects same-device P2P).
            return Move(
                tensor=move.tensor, nbytes=move.nbytes,
                channel=Channel.LOCAL, peer=None,
                src_task=move.src_task, label=move.label,
            )
    if peer is not move.peer:
        return Move(
            tensor=move.tensor, nbytes=move.nbytes, channel=move.channel,
            peer=peer, src_task=move.src_task, label=move.label,
        )
    return move


def apply_device_mapping(graph: TaskGraph, mapping: dict[int, int],
                         n_devices: int) -> TaskGraph:
    """Rebuild ``graph`` with every binding pushed through ``mapping``.

    The one graph rewrite behind every rebind: devices absent from
    ``mapping`` keep their binding, P2P moves whose endpoints collapse
    onto one device become LOCAL.  No injectivity requirement -- a
    many-to-one mapping is a legal time-slice bind; callers that need
    injectivity (the elastic relabel, whose plans' capacity fit assumed
    one logical device per GPU) validate before calling.
    """
    task_device = {
        t.tid: mapping.get(t.device, t.device) for t in graph.tasks
    }
    rebound = TaskGraph(
        mode=graph.mode,
        n_devices=n_devices,
        pageable_swaps=graph.pageable_swaps,
    )
    for task in graph.tasks:
        new_device = task_device[task.tid]
        moved: Task = task.with_device(new_device)
        moved.ins = [
            remap_move(m, task_device, mapping, new_device)
            for m in task.ins
        ]
        moved.outs = [
            remap_move(m, task_device, mapping, new_device)
            for m in task.outs
        ]
        rebound.add(moved)
    return rebound


def _canon(value: object) -> str:
    """Bit-stable canonical text for fingerprint material."""
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(_canon(v) for v in value) + ")"
    if hasattr(value, "__dataclass_fields__"):
        import dataclasses

        parts = ",".join(
            f"{f.name}={_canon(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({parts})"
    return repr(value)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def server_fingerprint(spec: object) -> str:
    """Stable digest of a :class:`~repro.hardware.server.ServerSpec`.

    Covers everything the Scheduler's output depends on: GPU count and
    per-GPU FLOPs/memory, host spec, and the PCIe topology shape.  Used
    in plan memo keys so a plan searched against one hardware mix is
    never served for another (duck-typed to stay import-cycle-free).
    """
    return _digest(_canon(spec))


@dataclass(frozen=True)
class LogicalDevice:
    """A planning-time GPU identity: what ``Harmony.plan`` targets."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"logical device index must be >= 0, "
                             f"got {self.index}")


@dataclass(frozen=True)
class PhysicalDevice:
    """One real GPU, relative to the planned spec.

    ``flops_scale`` rescales compute speed (2.0 = twice as fast);
    ``memory_scale`` rescales capacity.  Memory is derived via exact
    :class:`~fractions.Fraction` arithmetic so capacity checks stay
    integer-exact (the project linter forbids float capacity math).
    """

    index: int
    flops_scale: float = 1.0
    memory_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"physical device index must be >= 0, "
                             f"got {self.index}")
        if not self.flops_scale > 0:
            raise ValueError(f"flops_scale must be > 0, "
                             f"got {self.flops_scale}")
        if not self.memory_scale > 0:
            raise ValueError(f"memory_scale must be > 0, "
                             f"got {self.memory_scale}")

    def memory_bytes(self, base_bytes: int) -> int:
        """Exact scaled capacity: ``int(Fraction(scale) * base)``."""
        return int(Fraction(self.memory_scale) * base_bytes)


@dataclass(frozen=True)
class VirtualTopology:
    """The ordered physical device set a plan can be bound onto."""

    devices: tuple[PhysicalDevice, ...]

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a topology needs at least one device")
        for i, dev in enumerate(self.devices):
            if dev.index != i:
                raise ValueError(
                    f"device at position {i} has index {dev.index}; "
                    f"topology devices must be densely indexed"
                )

    @classmethod
    def uniform(cls, n: int) -> "VirtualTopology":
        """``n`` physical devices identical to the planned GPU."""
        return cls(tuple(PhysicalDevice(i) for i in range(n)))

    @classmethod
    def heterogeneous(
        cls, flops_scales: Sequence[float],
        memory_scales: Optional[Sequence[float]] = None,
    ) -> "VirtualTopology":
        """One device per scale; memory defaults to the planned GPU's."""
        if memory_scales is None:
            memory_scales = [1.0] * len(flops_scales)
        if len(memory_scales) != len(flops_scales):
            raise ValueError(
                f"{len(flops_scales)} FLOPs scales but "
                f"{len(memory_scales)} memory scales"
            )
        return cls(tuple(
            PhysicalDevice(i, flops_scale=f, memory_scale=m)
            for i, (f, m) in enumerate(zip(flops_scales, memory_scales))
        ))

    @property
    def n_physical(self) -> int:
        return len(self.devices)

    @property
    def is_uniform(self) -> bool:
        return all(
            d.flops_scale == 1.0 and d.memory_scale == 1.0
            for d in self.devices
        )

    def flops_scales(self) -> tuple[float, ...]:
        return tuple(d.flops_scale for d in self.devices)

    def device_memory(self, base_bytes: int) -> list[int]:
        """Exact per-physical-device capacity in bytes."""
        return [d.memory_bytes(base_bytes) for d in self.devices]

    def fingerprint(self) -> str:
        return _digest(_canon(self.devices))

    def describe(self) -> str:
        return ", ".join(
            f"gpu{d.index}[x{d.flops_scale:g} flops, "
            f"x{d.memory_scale:g} mem]"
            for d in self.devices
        )


@dataclass(frozen=True)
class DeviceBinding:
    """A total map from logical devices onto a physical topology.

    ``assignment[logical] = physical``.  Constructors cover the three
    bind shapes: :meth:`identity` (bit-identical execution),
    :meth:`pack` (round-robin time-slice onto fewer devices),
    :meth:`heterogeneous` (same count, rescaled devices); plus
    :meth:`from_mapping` for explicit maps and :meth:`embed` for placing
    a small plan inside a larger server's device range.
    """

    topology: VirtualTopology
    assignment: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.assignment:
            raise ValueError("a binding needs at least one logical device")
        n = self.topology.n_physical
        for logical, physical in enumerate(self.assignment):
            if not 0 <= physical < n:
                raise ValueError(
                    f"logical{logical} bound to gpu{physical}, outside "
                    f"the physical range [0, {n})"
                )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def identity(cls, n: int) -> "DeviceBinding":
        """``n`` logical devices onto ``n`` identical physical devices."""
        return cls(VirtualTopology.uniform(n), tuple(range(n)))

    @classmethod
    def pack(cls, n_logical: int,
             topology: "VirtualTopology") -> "DeviceBinding":
        """Round-robin ``n_logical`` devices onto the topology.

        With equal counts this is the identity assignment; with fewer
        physical devices, logical device ``i`` lands on physical
        ``i % n_physical`` (deterministic time-slice multiplexing).
        """
        n = topology.n_physical
        return cls(topology, tuple(i % n for i in range(n_logical)))

    @classmethod
    def heterogeneous(
        cls, flops_scales: Sequence[float],
        memory_scales: Optional[Sequence[float]] = None,
    ) -> "DeviceBinding":
        """Identity assignment onto a same-count heterogeneous topology."""
        topology = VirtualTopology.heterogeneous(flops_scales,
                                                 memory_scales)
        return cls(topology, tuple(range(topology.n_physical)))

    @classmethod
    def from_mapping(cls, mapping: dict[int, int], n_logical: int,
                     topology: Optional[VirtualTopology] = None,
                     ) -> "DeviceBinding":
        """Explicit map; devices absent from ``mapping`` bind in place."""
        assignment = tuple(
            mapping.get(logical, logical) for logical in range(n_logical)
        )
        if topology is None:
            topology = VirtualTopology.uniform(max(assignment) + 1)
        return cls(topology, assignment)

    @classmethod
    def embed(cls, n_logical: int, n_physical: int) -> "DeviceBinding":
        """Place an ``n_logical``-device plan in a larger device range.

        The service's stale-plan rung uses this: a cached 2-GPU plan
        served on a 4-GPU request keeps its bindings and widens the
        graph's device range so per-device metric arrays line up.
        """
        if n_logical > n_physical:
            raise ValueError(
                f"cannot embed {n_logical} logical devices into "
                f"{n_physical} physical ones; use pack() to time-slice"
            )
        return cls(VirtualTopology.uniform(n_physical),
                   tuple(range(n_logical)))

    # -- properties -----------------------------------------------------------

    @property
    def n_logical(self) -> int:
        return len(self.assignment)

    @property
    def n_physical(self) -> int:
        return self.topology.n_physical

    @property
    def injective(self) -> bool:
        return len(set(self.assignment)) == len(self.assignment)

    @property
    def identity_assignment(self) -> bool:
        return self.assignment == tuple(range(self.n_physical))

    @property
    def is_identity(self) -> bool:
        """True iff binding changes nothing: uniform topology, 1:1 map."""
        return self.identity_assignment and self.topology.is_uniform

    def mapping(self) -> dict[int, int]:
        return {logical: physical
                for logical, physical in enumerate(self.assignment)}

    def logical_on(self, physical: int) -> tuple[int, ...]:
        """Logical devices time-sliced onto one physical device."""
        return tuple(
            logical for logical, p in enumerate(self.assignment)
            if p == physical
        )

    # -- application ----------------------------------------------------------

    def apply(self, graph: TaskGraph) -> TaskGraph:
        """Rewrite the graph's device bindings onto physical devices.

        Identity bindings return the input graph unchanged (bit-identity
        by construction); everything else goes through the shared
        :func:`apply_device_mapping` rewrite.
        """
        if graph.n_devices != self.n_logical:
            raise ValueError(
                f"binding covers {self.n_logical} logical devices, "
                f"graph uses {graph.n_devices}"
            )
        if self.identity_assignment and self.n_physical == graph.n_devices:
            return graph
        return apply_device_mapping(graph, self.mapping(), self.n_physical)

    def device_memory(self, base_bytes: int) -> list[int]:
        """Exact per-physical-device memory capacity in bytes."""
        return self.topology.device_memory(base_bytes)

    def fingerprint(self) -> str:
        return _digest(
            _canon(self.assignment) + "|" + _canon(self.topology.devices)
        )

    def describe(self) -> str:
        slices = "; ".join(
            f"gpu{p} <- {{{', '.join(f'log{x}' for x in self.logical_on(p))}}}"
            for p in range(self.n_physical)
            if self.logical_on(p)
        )
        kind = ("identity" if self.is_identity
                else "time-slice" if not self.injective
                else "relabel" if self.topology.is_uniform
                else "heterogeneous")
        return (f"{kind} binding of {self.n_logical} logical onto "
                f"{self.n_physical} physical device(s): {slices}")
