"""Project-invariant AST linter: ``python -m repro.lint``.

The reproduction's determinism and certification guarantees rest on
conventions no general-purpose linter knows about.  This module walks
the AST of every file under ``src/repro`` and enforces them:

- **seeded randomness only** (``rng/stdlib-random``,
  ``rng/unseeded-numpy``): the stdlib ``random`` module may be imported
  only inside :mod:`repro.common.rng` (every other draw must derive from
  the package-wide seeding scheme), and ``numpy.random`` may be touched
  only through ``default_rng(seed)`` / ``Generator`` / ``SeedSequence``
  -- never the unseeded module-level API;
- **no wall-clock reads** (``time/wall-clock``): simulated time is the
  only clock; ``time.time``/``time.monotonic`` and ``datetime.now``
  kin would leak host time into supposedly deterministic runs
  (``time.perf_counter`` stays legal -- the bench harness measures real
  durations on purpose);
- **frozen trace events** (``trace/unfrozen-dataclass``): every
  dataclass in ``repro/trace/events.py`` must be ``frozen=True`` --
  recorded events are shared, hashed and replayed, so mutation is
  corruption;
- **integer-exact capacity arithmetic** (``exact/float-arithmetic``):
  the capacity certification paths (``analysis/capacity.py``,
  ``analysis/parametric.py``) must stay in integer arithmetic -- no
  true division, no ``float()`` -- so certificates are exact at any
  byte count instead of drifting past 2**53.  Formatting inside
  f-strings is exempt (messages may render GiB).

Exit status is the number of findings (0 = clean), and each finding
prints as ``path:line: rule: message``.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

#: The one module allowed to import stdlib ``random``.
RNG_MODULE = Path("repro") / "common" / "rng.py"

#: Files whose arithmetic must stay integer-exact.
INTEGER_EXACT = (
    Path("repro") / "analysis" / "capacity.py",
    Path("repro") / "analysis" / "parametric.py",
)

#: File whose dataclasses must all be frozen.
FROZEN_DATACLASSES = Path("repro") / "trace" / "events.py"

#: Wall-clock reads on the stdlib ``time`` module (perf_counter is the
#: sanctioned way to measure real durations, so it is not listed).
_WALL_CLOCK_TIME = ("time", "time_ns", "monotonic", "monotonic_ns")
_WALL_CLOCK_DATETIME = ("now", "utcnow", "today")

#: The only sanctioned entry points into numpy.random.
_NUMPY_RANDOM_OK = ("default_rng", "Generator", "SeedSequence", "BitGenerator")


@dataclass(frozen=True)
class Finding:
    path: Path
    line: int
    rule: str
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty when not a plain name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


class _Checker(ast.NodeVisitor):
    def __init__(self, rel_path: Path):
        self.rel_path = rel_path
        self.findings: list[Finding] = []
        self.in_fstring = 0
        self.integer_exact = rel_path in INTEGER_EXACT
        self.allow_stdlib_random = rel_path == RNG_MODULE
        self.check_frozen = rel_path == FROZEN_DATACLASSES

    def flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(
            self.rel_path, getattr(node, "lineno", 0), rule, message,
        ))

    # -- seeded randomness -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" and not self.allow_stdlib_random:
                self.flag(
                    node, "rng/stdlib-random",
                    "stdlib random imported outside repro.common.rng; "
                    "derive draws from repro.common.rng.seeded_rng",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "random" and not self.allow_stdlib_random:
            self.flag(
                node, "rng/stdlib-random",
                "stdlib random imported outside repro.common.rng; "
                "derive draws from repro.common.rng.seeded_rng",
            )
        if module in ("numpy.random", "np.random"):
            for alias in node.names:
                if alias.name not in _NUMPY_RANDOM_OK:
                    self.flag(
                        node, "rng/unseeded-numpy",
                        f"numpy.random.{alias.name} bypasses the seeded "
                        "Generator API; use default_rng(seed)",
                    )
        self.generic_visit(node)

    # -- calls: numpy.random, wall clocks, float() -------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if len(chain) >= 2 and chain[-2] == "random" and chain[0] in (
            "np", "numpy"
        ):
            name = chain[-1]
            if name not in _NUMPY_RANDOM_OK:
                self.flag(
                    node, "rng/unseeded-numpy",
                    f"numpy.random.{name}() draws from unseeded global "
                    "state; use default_rng(seed)",
                )
            elif name == "default_rng" and not (node.args or node.keywords):
                self.flag(
                    node, "rng/unseeded-numpy",
                    "default_rng() without a seed is entropy-seeded; "
                    "pass the run's seed",
                )
        if len(chain) == 2 and chain[0] == "time" and chain[1] in (
            _WALL_CLOCK_TIME
        ):
            self.flag(
                node, "time/wall-clock",
                f"time.{chain[1]}() reads the wall clock; simulated "
                "time is the only clock (perf_counter is allowed for "
                "benchmarks)",
            )
        if chain and chain[-1] in _WALL_CLOCK_DATETIME and "datetime" in (
            chain[0], chain[-2] if len(chain) >= 2 else ""
        ):
            self.flag(
                node, "time/wall-clock",
                f"{'.'.join(chain)}() reads the wall clock; pass "
                "timestamps in explicitly",
            )
        if (
            self.integer_exact
            and not self.in_fstring
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            self.flag(
                node, "exact/float-arithmetic",
                "float() in an integer-exact capacity path; certificates "
                "must not round past 2**53 bytes",
            )
        self.generic_visit(node)

    # -- integer-exact arithmetic ------------------------------------------------

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        self.in_fstring += 1
        self.generic_visit(node)
        self.in_fstring -= 1

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            self.integer_exact
            and not self.in_fstring
            and isinstance(node.op, ast.Div)
        ):
            self.flag(
                node, "exact/float-arithmetic",
                "true division in an integer-exact capacity path; use "
                "// (or format inside an f-string)",
            )
        self.generic_visit(node)

    # -- frozen trace events -----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.check_frozen:
            for decorator in node.decorator_list:
                if self._is_unfrozen_dataclass(decorator):
                    self.flag(
                        node, "trace/unfrozen-dataclass",
                        f"dataclass {node.name!r} in trace/events.py "
                        "must be frozen=True; recorded events are "
                        "shared and replayed",
                    )
        self.generic_visit(node)

    @staticmethod
    def _is_unfrozen_dataclass(decorator: ast.AST) -> bool:
        if isinstance(decorator, ast.Name):
            return decorator.id == "dataclass"
        if isinstance(decorator, ast.Call):
            chain = _attr_chain(decorator.func)
            if not chain or chain[-1] != "dataclass":
                return False
            for kw in decorator.keywords:
                if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                    return kw.value.value is not True
            return True  # dataclass(...) without frozen=True
        return False


def lint_file(path: Path, root: Path) -> list[Finding]:
    rel = path.relative_to(root)
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [Finding(rel, exc.lineno or 0, "parse/syntax-error",
                        str(exc))]
    checker = _Checker(rel)
    checker.visit(tree)
    return checker.findings


def lint_tree(root: Path) -> Iterator[Finding]:
    """Lint every Python file under ``root`` (a ``src`` directory)."""
    for path in sorted(root.rglob("*.py")):
        yield from lint_file(path, root)


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent
    findings = list(lint_tree(root))
    for finding in findings:
        print(finding.describe())
    checked = len(list(root.rglob("*.py")))
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"repro.lint: {checked} file(s) under {root} -- {status}")
    return min(len(findings), 125)


if __name__ == "__main__":
    raise SystemExit(main())
