"""Figure 14: accuracy of the Runtime Estimator.

Sample configurations the Scheduler explored for BERT-Large (minibatch
600, Harmony PP, 4 GPUs), run each for real on the simulated server, and
compare the estimator's iteration time against the measured one.  The
paper's scatter hugs y=x; ours differs only by the regression error and
link contention the estimator ignores.
"""

from __future__ import annotations

from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import Row, render, server_for

MODEL = "bert-large"
MINIBATCH = 600
N_SAMPLES = 15


def run(fast: bool = False) -> list[Row]:
    minibatch = 120 if fast else MINIBATCH
    harmony = Harmony(MODEL, server_for(4), minibatch,
                      options=HarmonyOptions(mode="pp"))
    plan = harmony.plan()
    explored = sorted(plan.search.explored, key=lambda e: e.estimate)
    n = 5 if fast else N_SAMPLES
    stride = max(1, len(explored) // n)
    sampled = explored[::stride][:n]

    rows: list[Row] = []
    for entry in sampled:
        config_plan = harmony.plan(config=entry.config)
        actual = harmony.run(plan=config_plan).metrics.iteration_time
        rows.append({
            "config": entry.config.describe(),
            "estimated(s)": entry.estimate,
            "actual(s)": actual,
            "error(%)": 100.0 * abs(entry.estimate - actual) / actual,
        })
    return rows


def max_error(rows: list[Row]) -> float:
    return max(row["error(%)"] for row in rows)


def main() -> None:
    rows = run()
    print(render(rows))
    print(f"max estimation error: {max_error(rows):.1f}%")


if __name__ == "__main__":
    main()
