"""Tables 1 and 5: configuration-search results and scheduler timing.

For each model (Harmony PP, 4 GPUs, minibatch 64) report the searched
four-tuple, the pack counts, the end-to-end Scheduler wall time, and
(Table 5) the detailed layer packs.
"""

from __future__ import annotations

from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import Row, render, server_for

MODELS = ("bert96", "gpt2", "vgg416", "resnet1k")
MINIBATCH = 64


def run(fast: bool = False, models: tuple[str, ...] = MODELS) -> list[Row]:
    if fast:
        models = ("bert96", "gpt2")
    rows: list[Row] = []
    for model in models:
        harmony = Harmony(model, server_for(4), MINIBATCH,
                          options=HarmonyOptions(mode="pp"))
        plan = harmony.plan()
        config = plan.config
        rows.append({
            "model": model,
            "U_F": config.u_f,
            "|P_F|": len(config.packs_f),
            "U_B": config.u_b,
            "|P_B|": len(config.packs_b),
            "scheduler_time(s)": plan.search.elapsed_seconds,
            "configs_explored": plan.search.n_feasible,
        })
    return rows


def pack_details(models: tuple[str, ...] = MODELS) -> dict[str, str]:
    """Table 5: the full pack lists per model."""
    details = {}
    for model in models:
        harmony = Harmony(model, server_for(4), MINIBATCH,
                          options=HarmonyOptions(mode="pp"))
        details[model] = harmony.plan().config.pack_table()
    return details


def main() -> None:
    print(render(run()))
    for model, table in pack_details().items():
        print(f"\n== {model} ==\n{table}")


if __name__ == "__main__":
    main()
