"""Figure 1: growth of DNN model size versus GPU memory capacity.

A data figure in the paper (sources [14, 57]); we reproduce the two
series -- landmark model sizes and flagship GPU memory by year -- and the
headline statistic: model state grows orders of magnitude faster than
device memory.
"""

from __future__ import annotations

from repro.experiments.common import Row, render

#: (year, model, parameters) -- landmark models from the paper's figure.
MODEL_SIZES = [
    (2012, "AlexNet", 60e6),
    (2014, "VGG19", 144e6),
    (2015, "ResNet-152", 60e6),
    (2017, "Transformer", 213e6),
    (2018, "BERT-Large", 340e6),
    (2019, "GPT-2", 1.5e9),
    (2019, "Megatron-LM", 8.3e9),
    (2020, "T5-11B", 11e9),
    (2020, "GPT-3", 175e9),
    (2021, "MT-NLG (announced)", 530e9),
]

#: (year, gpu, memory GiB) -- flagship NVIDIA parts.
GPU_MEMORY = [
    (2012, "K20", 5),
    (2014, "K40", 12),
    (2016, "P100", 16),
    (2017, "V100", 16),
    (2018, "V100-32", 32),
    (2020, "A100-40", 40),
    (2021, "A100-80", 80),
]

FP32_STATE_BYTES_PER_PARAM = 16  # weights + grads + two Adam moments


def run(fast: bool = False) -> list[Row]:
    rows: list[Row] = []
    for year, model, params in MODEL_SIZES:
        gpu_year, gpu, mem = max(
            (g for g in GPU_MEMORY if g[0] <= year), key=lambda g: g[0]
        )
        state_gib = params * FP32_STATE_BYTES_PER_PARAM / 2**30
        rows.append({
            "year": year,
            "model": model,
            "params(B)": params / 1e9,
            "model_state(GiB)": state_gib,
            "flagship_gpu": f"{gpu} ({gpu_year})",
            "gpu_mem(GiB)": mem,
            "state/gpu_ratio": state_gib / mem,
        })
    return rows


def headline(rows: list[Row]) -> str:
    first, last = rows[0], rows[-1]
    model_growth = last["params(B)"] / first["params(B)"]
    gpu_growth = GPU_MEMORY[-1][2] / GPU_MEMORY[0][2]
    return (
        f"2012-2021: model size grew {model_growth:,.0f}x while flagship GPU "
        f"memory grew {gpu_growth:.0f}x"
    )


def main() -> None:
    rows = run()
    print(render(rows))
    print(headline(rows))


if __name__ == "__main__":
    main()
