"""Figure 10: swap load comparison for GPT2 on 4 GPUs.

(a) Per-GPU swap volume per minibatch for each approach at a fixed
minibatch; (b) global swap volume across minibatch sizes -- baselines
100-300x above the Harmony schemes; (c) aggregate per-GPU view.
"""

from __future__ import annotations

from repro.experiments.common import GIB, Row, SCHEMES, render, run_scheme

MODEL = "gpt2"
FIXED_BATCH = 32
BATCHES = (16, 32, 64)


def run(fast: bool = False) -> list[Row]:
    rows: list[Row] = []
    # Panel (a): per-GPU at a fixed minibatch.
    for scheme in SCHEMES:
        metrics = run_scheme(scheme, MODEL, FIXED_BATCH)
        for gpu, g in enumerate(metrics.gpus):
            rows.append({
                "panel": "a:per-gpu",
                "scheme": scheme,
                "minibatch": FIXED_BATCH,
                "gpu": gpu,
                "swap(GiB)": g.swap_bytes / GIB,
            })
    # Panel (b): global volume vs minibatch size.
    batches = BATCHES[-1:] if fast else BATCHES
    for minibatch in batches:
        for scheme in SCHEMES:
            metrics = run_scheme(scheme, MODEL, minibatch)
            rows.append({
                "panel": "b:global",
                "scheme": scheme,
                "minibatch": minibatch,
                "gpu": -1,
                "swap(GiB)": metrics.global_swap_bytes / GIB,
            })
    return rows


def swap_ratio(rows: list[Row], minibatch: int = 64) -> float:
    """DP Swap : Harmony PP global swap ratio at one minibatch size."""
    cell = {
        row["scheme"]: row["swap(GiB)"]
        for row in rows
        if row["panel"] == "b:global" and row["minibatch"] == minibatch
    }
    return cell["dp-swap"] / cell["harmony-pp"]


def main() -> None:
    rows = run()
    print(render(rows))
    print(f"swap ratio dp-swap / harmony-pp @64: {swap_ratio(rows):.0f}x")


if __name__ == "__main__":
    main()
