"""Figure 15: training 10-40 billion parameter models at the limit of
single-server CPU memory (8 GPUs, 750 GB host).

Harmony DP/PP train every size; the ZeRO-Infinity analog, whose host
working set carries fp32 master/partition overheads, runs out of CPU
memory at 40 B parameters.
"""

from __future__ import annotations

from repro.baselines import ZeroInfinityPlanner
from repro.common.errors import HostOutOfMemoryError
from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import GIB, Row, render, server_for

SIZES = (10, 20, 30, 40)
MINIBATCH = 32


def run(fast: bool = False) -> list[Row]:
    sizes = (10, 40) if fast else SIZES
    server = server_for(8)
    rows: list[Row] = []
    for billions in sizes:
        model = f"gpt2-{billions}b"
        for mode in ("dp", "pp"):
            harmony = Harmony(model, server, MINIBATCH,
                              options=HarmonyOptions(mode=mode))
            metrics = harmony.run().metrics
            rows.append({
                "model": model,
                "scheme": f"harmony-{mode}",
                "throughput(samples/s)": metrics.throughput,
                "host_peak(GiB)": metrics.host_peak_bytes / GIB,
                "status": "ok",
            })
        config = Harmony(model, server, MINIBATCH,
                         options=HarmonyOptions(mode="dp")).plan().config
        zero = ZeroInfinityPlanner(model, server, MINIBATCH,
                                   u_f=config.u_f, u_b=config.u_b)
        try:
            metrics = zero.run()
            rows.append({
                "model": model,
                "scheme": "zero-infinity",
                "throughput(samples/s)": metrics.throughput,
                "host_peak(GiB)": metrics.host_peak_bytes / GIB,
                "status": "ok",
            })
        except HostOutOfMemoryError as exc:
            rows.append({
                "model": model,
                "scheme": "zero-infinity",
                "throughput(samples/s)": 0.0,
                "host_peak(GiB)": float("nan"),
                "status": f"OOM ({exc})"[:60],
            })
    return rows


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
