"""Figure 9 (and the companion Figure 20): throughput versus the per-GPU
swap baselines.

For each model and minibatch size, run every scheme and report samples/s;
``normalized(rows)`` converts to Figure 20's view (iteration time relative
to Harmony PP -- higher is worse).

Expected shape (paper takeaways): DP Swap consistently worst; GP Swap
below 2BW Swap; the (R) recompute variants well above their no-recompute
counterparts; Harmony DP above every baseline; Harmony PP fastest or
statistically tied with Harmony DP; Harmony's lead widening with
minibatch size.
"""

from __future__ import annotations

from repro.experiments.common import GIB, Row, SCHEMES, render, run_scheme

MODELS = ("bert96", "gpt2", "vgg416", "resnet1k")
BATCHES = (16, 32, 64)


def run(fast: bool = False, models: tuple[str, ...] = MODELS,
        batches: tuple[int, ...] = BATCHES) -> list[Row]:
    if fast:
        models = models[:2]
        batches = batches[-1:]
    rows: list[Row] = []
    for model in models:
        for minibatch in batches:
            for scheme in SCHEMES:
                metrics = run_scheme(scheme, model, minibatch)
                rows.append({
                    "model": model,
                    "minibatch": minibatch,
                    "scheme": scheme,
                    "throughput(samples/s)": metrics.throughput,
                    "iteration(s)": metrics.iteration_time,
                    "global_swap(GiB)": metrics.global_swap_bytes / GIB,
                })
    return rows


def normalized(rows: list[Row]) -> list[Row]:
    """Figure 20: iteration time normalized to Harmony PP (higher=worse)."""
    reference: dict[tuple[str, int], float] = {}
    for row in rows:
        if row["scheme"] == "harmony-pp":
            reference[(row["model"], row["minibatch"])] = row["iteration(s)"]
    out = []
    for row in rows:
        base = reference[(row["model"], row["minibatch"])]
        out.append({
            "model": row["model"],
            "minibatch": row["minibatch"],
            "scheme": row["scheme"],
            "normalized_iteration": row["iteration(s)"] / base,
        })
    return out


def speedups(rows: list[Row]) -> list[Row]:
    """Max Harmony speedup over DP Swap per model (the headline numbers)."""
    best: dict[str, Row] = {}
    by_cell: dict[tuple[str, int], dict[str, float]] = {}
    for row in rows:
        by_cell.setdefault((row["model"], row["minibatch"]), {})[
            row["scheme"]
        ] = row["iteration(s)"]
    for (model, minibatch), cell in by_cell.items():
        for mode in ("harmony-dp", "harmony-pp"):
            speedup = cell["dp-swap"] / cell[mode]
            key = f"{model}/{mode}"
            if key not in best or speedup > best[key]["speedup_vs_dp_swap"]:
                best[key] = {
                    "model": model,
                    "mode": mode,
                    "at_minibatch": minibatch,
                    "speedup_vs_dp_swap": speedup,
                }
    return sorted(best.values(), key=lambda r: (r["model"], r["mode"]))


def main() -> None:
    rows = run()
    print(render(rows))
    print()
    print(render(speedups(rows)))


if __name__ == "__main__":
    main()
