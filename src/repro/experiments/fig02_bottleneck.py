"""Figure 2: the swap bottleneck of per-GPU virtualization.

(b) Training BERT-Large with DP Swap at a fixed per-GPU batch: total swap
volume grows linearly with the GPU count, exposing the shared PCIe uplink
and flat-lining throughput.  (c) GP Swap's per-stage swap volumes are
unbalanced: the head stages stash more, making them the pipeline
bottleneck.
"""

from __future__ import annotations

from repro.baselines import DpSwapPlanner, PipeDream2BWPlanner
from repro.experiments.common import GIB, Row, render, server_for

MODEL = "bert-large"
# Panel (c) uses the deeper BERT variant: per-stage state large enough
# that the 1F1B head stages' deeper in-flight stash actually spills.
PP_MODEL = "bert96"
PER_GPU_BATCH = 5


def run(fast: bool = False) -> list[Row]:
    rows: list[Row] = []
    gpu_counts = (1, 2, 4) if fast else (1, 2, 3, 4)
    for n in gpu_counts:
        server = server_for(n)
        planner = DpSwapPlanner(MODEL, server, minibatch=PER_GPU_BATCH * n,
                                microbatch=PER_GPU_BATCH)
        metrics = planner.run()
        rows.append({
            "panel": "b:dp-swap",
            "gpus": n,
            "minibatch": PER_GPU_BATCH * n,
            "global_swap(GiB)": metrics.global_swap_bytes / GIB,
            "throughput(samples/s)": metrics.throughput,
        })

    server = server_for(4)
    planner = PipeDream2BWPlanner(PP_MODEL, server,
                                  minibatch=PER_GPU_BATCH * 4,
                                  microbatch=PER_GPU_BATCH)
    metrics = planner.run()
    for gpu, g in enumerate(metrics.gpus):
        rows.append({
            "panel": "c:pp-swap-stage",
            "gpus": gpu,  # stage id == GPU id for the pipeline
            "minibatch": PER_GPU_BATCH * 4,
            "global_swap(GiB)": g.swap_bytes / GIB,
            "throughput(samples/s)": metrics.throughput,
        })
    return rows


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
