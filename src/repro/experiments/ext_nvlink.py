"""Extension experiment: Harmony on an NVLink-equipped server.

The paper's footnote 3 claims "NVLink will only enhance Harmony's
advantages due to p2p transfers".  This experiment fits the 4-GPU testbed
with an NVLink 2.0 mesh (25 GB/s per direction per pair) and re-runs
Harmony DP and PP: the pipeline's inter-pack activations leave the PCIe
tree entirely, so PP gains while DP (which never uses p2p) is unchanged
-- exactly the footnote's prediction.
"""

from __future__ import annotations

from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import GIB, Row, render
from repro.hardware.gpu import GTX_1080TI
from repro.hardware.host import COMMODITY_XEON_18C
from repro.hardware.interconnect import NVLINK2_BW, TopologySpec
from repro.hardware.server import ServerSpec

MODELS = ("gpt2", "vgg416")
MINIBATCH = 32


def nvlink_server() -> ServerSpec:
    return ServerSpec(
        n_gpus=4,
        gpu=GTX_1080TI,
        host=COMMODITY_XEON_18C,
        topology=TopologySpec(n_gpus=4, gpus_per_switch=4,
                              nvlink_bandwidth=NVLINK2_BW),
    )


def pcie_server() -> ServerSpec:
    return ServerSpec(n_gpus=4, gpu=GTX_1080TI, host=COMMODITY_XEON_18C)


def run(fast: bool = False, models: tuple[str, ...] = MODELS) -> list[Row]:
    if fast:
        models = models[:1]
    rows: list[Row] = []
    for model in models:
        for mode in ("dp", "pp"):
            for label, server in (("pcie", pcie_server()),
                                  ("nvlink", nvlink_server())):
                harmony = Harmony(model, server, MINIBATCH,
                                  options=HarmonyOptions(mode=mode))
                metrics = harmony.run().metrics
                rows.append({
                    "model": model,
                    "scheme": f"harmony-{mode}",
                    "interconnect": label,
                    "iteration(s)": metrics.iteration_time,
                    "p2p(GiB)": metrics.global_p2p_bytes / GIB,
                })
    return rows


def nvlink_gain(rows: list[Row], model: str, mode: str) -> float:
    """Iteration-time ratio pcie/nvlink (>1 means NVLink helped)."""
    by = {
        (r["model"], r["scheme"], r["interconnect"]): r["iteration(s)"]
        for r in rows
    }
    return (by[(model, f"harmony-{mode}", "pcie")]
            / by[(model, f"harmony-{mode}", "nvlink")])


def main() -> None:
    rows = run()
    print(render(rows))
    for model in MODELS:
        print(f"{model}: NVLink gain PP={nvlink_gain(rows, model, 'pp'):.3f}x "
              f"DP={nvlink_gain(rows, model, 'dp'):.3f}x")


if __name__ == "__main__":
    main()
