"""Figure 11: comparison with ZeRO-Infinity on GPT2 (1.5B), 4 GPUs.

ZeRO-Infinity shares Harmony's configuration (microbatch sizes, recompute
pack granularity) per the paper's methodology; the throughput gap is then
attributable to its per-microbatch re-fetch of sharded state (no
input-batch grouping), visible as an order-of-magnitude higher swap load.
"""

from __future__ import annotations

from repro.experiments.common import GIB, Row, render, run_scheme

MODEL = "gpt2"
BATCHES = (16, 32, 64)
SCHEMES = ("zero-infinity", "harmony-dp", "harmony-pp")


def run(fast: bool = False) -> list[Row]:
    batches = BATCHES[-1:] if fast else BATCHES
    rows: list[Row] = []
    for minibatch in batches:
        for scheme in SCHEMES:
            metrics = run_scheme(scheme, MODEL, minibatch)
            rows.append({
                "scheme": scheme,
                "minibatch": minibatch,
                "throughput(samples/s)": metrics.throughput,
                "iteration(s)": metrics.iteration_time,
                "global_swap(GiB)": metrics.global_swap_bytes / GIB,
                "max_gpu_swap(GiB)": max(g.swap_bytes for g in metrics.gpus) / GIB,
            })
    return rows


def summary(rows: list[Row]) -> Row:
    by = {(r["scheme"], r["minibatch"]): r for r in rows}
    batch = max(r["minibatch"] for r in rows)
    zero = by[("zero-infinity", batch)]
    return {
        "minibatch": batch,
        "dp_speedup_vs_zero": zero["iteration(s)"]
        / by[("harmony-dp", batch)]["iteration(s)"],
        "pp_speedup_vs_zero": zero["iteration(s)"]
        / by[("harmony-pp", batch)]["iteration(s)"],
        "swap_ratio_zero_vs_pp": zero["global_swap(GiB)"]
        / by[("harmony-pp", batch)]["global_swap(GiB)"],
    }


def main() -> None:
    rows = run()
    print(render(rows))
    print(render([summary(rows)]))


if __name__ == "__main__":
    main()
