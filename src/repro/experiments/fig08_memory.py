"""Figures 8 and 18: training memory footprint versus minibatch size.

Breaks the footprint into the paper's components -- weights, running
state (gradients + optimizer moments), stashed activations / workspace
under recomputation checkpointing, and input data -- showing that even
the smallest minibatch exceeds a single GPU (and often the whole server's
collective GPU memory).
"""

from __future__ import annotations

from repro.experiments.common import GIB, Row, render, server_for
from repro.models.zoo import build_model

TRANSFORMERS = ("bert96", "gpt2")
CNNS = ("vgg416", "resnet1k")
BATCHES = (1, 8, 32, 64)


def footprint(model_name: str, minibatch: int) -> Row:
    model = build_model(model_name)
    graph = model.graph
    weights = graph.total_param_bytes
    running = graph.total_param_bytes * (1 + model.optimizer_slots)
    # Saved-for-backward at pack-input granularity: under recomputation one
    # checkpoint per layer is the upper bound the virtualized baseline pays.
    stash = sum(
        (layer.act_out_bytes_per_sample + layer.workspace_bytes_per_sample)
        for layer in graph
    ) * minibatch
    inputs = model.sample_bytes * minibatch
    total = weights + running + stash + inputs
    server = server_for(4)
    return {
        "model": model_name,
        "minibatch": minibatch,
        "weights(GiB)": weights / GIB,
        "running_state(GiB)": running / GIB,
        "activations(GiB)": stash / GIB,
        "inputs(GiB)": inputs / GIB,
        "total(GiB)": total / GIB,
        "x_single_gpu": total / server.gpu.memory_bytes,
        "x_all_gpus": total / server.collective_gpu_memory,
    }


def run(fast: bool = False, models: tuple[str, ...] = TRANSFORMERS + CNNS) -> list[Row]:
    batches = BATCHES[:2] if fast else BATCHES
    return [footprint(m, b) for m in models for b in batches]


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
