"""Figure 16: Harmony's scalability from 1 to 8 GPUs on massive models.

Harmony PP scales super-linearly with GPU count (more collective memory
means less swapping, plus p2p transfers); Harmony DP scales too but pays
N-times-replicated weight swaps, and the DP-PP gap widens with model
size.
"""

from __future__ import annotations

from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import Row, render, scaling_server

SIZES = (10, 20, 40)
GPU_COUNTS = (1, 2, 4, 8)
MINIBATCH = 16


def run(fast: bool = False) -> list[Row]:
    sizes = (10,) if fast else SIZES
    counts = (1, 4, 8) if fast else GPU_COUNTS
    rows: list[Row] = []
    for billions in sizes:
        model = f"gpt2-{billions}b"
        reference: dict[str, float] = {}
        for n in counts:
            for mode in ("dp", "pp"):
                if mode == "dp" and MINIBATCH % n:
                    continue
                harmony = Harmony(model, scaling_server(n), MINIBATCH,
                                  options=HarmonyOptions(mode=mode))
                metrics = harmony.run().metrics
                reference.setdefault(mode, metrics.throughput)
                rows.append({
                    "model": model,
                    "scheme": f"harmony-{mode}",
                    "gpus": n,
                    "throughput(samples/s)": metrics.throughput,
                    "speedup_vs_1gpu": metrics.throughput / reference[mode],
                })
    return rows


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
