"""One module per table/figure of the paper's evaluation.

Every module exposes ``run(fast: bool = False) -> list[dict]`` returning
the rows the paper's plot/table reports, plus ``render(rows) -> str`` for
a human-readable table.  ``fast=True`` shrinks sweeps for CI; the
benchmark harness runs the full setting and ``EXPERIMENTS.md`` records
paper-vs-measured values.
"""

from repro.experiments import common

__all__ = ["common"]
