"""Figures 12 & 19 and Table 3: correctness of training in Harmony.

Fine-tune the numeric stand-ins ("BERT-tiny" on synthetic MRPC with Adam;
"GPT-tiny" on synthetic WikiText) three ways -- the single-device
reference, Harmony PP (1 worker, microbatched + rematerialized), and
Harmony DP (4 workers) -- and compare the loss of *every* minibatch plus
the final evaluation quality.  Synchronous-SGD semantics require the
curves to coincide; in float64 they agree to ~1e-12.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import Row, render
from repro.numeric.data import Dataset, synthetic_mrpc, synthetic_wikitext
from repro.numeric.harmony_exec import HarmonyNumericTrainer
from repro.numeric.model import make_classifier, make_lm
from repro.numeric.optim import Adam
from repro.numeric.trainer import ReferenceTrainer

BATCH = 32
EPOCHS = 3


def _curves(task: str, dataset: Dataset, make_model, fast: bool) -> list[Row]:
    epochs = 1 if fast else EPOCHS
    runs = {}
    reference = ReferenceTrainer(make_model(), Adam(lr=2e-3))
    runs["baseline-1gpu"] = reference.train(dataset, BATCH, epochs)
    runs["harmony-pp"] = HarmonyNumericTrainer(
        make_model(), Adam(lr=2e-3), u_f=8, u_b=4
    ).train(dataset, BATCH, epochs)
    runs["harmony-dp-4gpu"] = HarmonyNumericTrainer(
        make_model(), Adam(lr=2e-3), u_f=8, u_b=4, n_workers=4
    ).train(dataset, BATCH, epochs)

    base = runs["baseline-1gpu"]
    rows = []
    for name, curve in runs.items():
        deviation = max(
            abs(a - b) for a, b in zip(base.losses, curve.losses)
        )
        rows.append({
            "task": task,
            "scheme": name,
            "minibatches": len(curve.losses),
            "first_loss": curve.losses[0],
            "final_loss": curve.losses[-1],
            "max_loss_dev_vs_baseline": deviation,
            "eval_accuracy(%)": curve.eval_accuracy * 100,
        })
    return rows


def run(fast: bool = False) -> list[Row]:
    rows = _curves("mrpc (Fig 12)", synthetic_mrpc(),
                   lambda: make_classifier(seed=0), fast)
    rows += _curves("wikitext (Fig 19)", synthetic_wikitext(),
                    lambda: make_lm(seed=1), fast)
    return rows


def exact_match(rows: list[Row], tol: float = 1e-10) -> bool:
    """Table 3's claim: every scheme matches the baseline."""
    return all(row["max_loss_dev_vs_baseline"] <= tol for row in rows)


def main() -> None:
    rows = run()
    print(render(rows))
    print("exact match (<=1e-10):", exact_match(rows))


if __name__ == "__main__":
    main()
