"""Shared helpers for the experiment modules."""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Optional, Sequence

from repro.core.harmony import Harmony, HarmonyOptions
from repro.baselines import (
    DpSwapPlanner,
    GpipeSwapPlanner,
    PipeDream2BWPlanner,
    ZeroInfinityPlanner,
)
from repro.hardware.server import (
    ServerSpec,
    eight_gpu_commodity_server,
    four_gpu_commodity_server,
)
from repro.runtime.metrics import RunMetrics

Row = dict[str, Any]

GIB = 2**30

#: Display order of the per-GPU-swap comparison (Figure 9).
SCHEMES = (
    "dp-swap",
    "gp-swap",
    "gp-swap-r",
    "2bw-swap",
    "2bw-swap-r",
    "harmony-dp",
    "harmony-pp",
)


def render(rows: Sequence[Row], columns: Optional[Sequence[str]] = None) -> str:
    """Fixed-width text table of experiment rows."""
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in cells
    )
    return f"{header}\n{sep}\n{body}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)


@lru_cache(maxsize=None)
def run_scheme(
    scheme: str,
    model: str,
    minibatch: int,
    n_gpus: int = 4,
) -> RunMetrics:
    """Execute one (scheme, model, minibatch) cell; memoized per process.

    ``zero-infinity`` adopts Harmony DP's searched configuration, per the
    paper's fair-comparison methodology.
    """
    server = server_for(n_gpus)
    if scheme == "harmony-dp":
        return Harmony(model, server, minibatch,
                       options=HarmonyOptions(mode="dp")).run().metrics
    if scheme == "harmony-pp":
        return Harmony(model, server, minibatch,
                       options=HarmonyOptions(mode="pp")).run().metrics
    if scheme == "dp-swap":
        return DpSwapPlanner(model, server, minibatch).run()
    if scheme == "gp-swap":
        return GpipeSwapPlanner(model, server, minibatch).run()
    if scheme == "gp-swap-r":
        return GpipeSwapPlanner(model, server, minibatch, recompute=True).run()
    if scheme == "2bw-swap":
        return PipeDream2BWPlanner(model, server, minibatch).run()
    if scheme == "2bw-swap-r":
        return PipeDream2BWPlanner(model, server, minibatch,
                                   recompute=True).run()
    if scheme == "zero-infinity":
        config = Harmony(model, server, minibatch,
                         options=HarmonyOptions(mode="dp")).plan().config
        return ZeroInfinityPlanner(
            model, server, minibatch, u_f=config.u_f, u_b=config.u_b
        ).run()
    raise ValueError(f"unknown scheme {scheme!r}")


@lru_cache(maxsize=None)
def server_for(n_gpus: int) -> ServerSpec:
    """The paper's testbeds, shrunk for intermediate GPU counts."""
    if n_gpus == 4:
        return four_gpu_commodity_server()
    if n_gpus == 8:
        return eight_gpu_commodity_server()
    base = eight_gpu_commodity_server()
    from repro.hardware.interconnect import TopologySpec

    return ServerSpec(
        n_gpus=n_gpus,
        gpu=base.gpu,
        host=base.host,
        topology=TopologySpec(n_gpus=n_gpus, gpus_per_switch=4),
    )


@lru_cache(maxsize=None)
def scaling_server(n_gpus: int) -> ServerSpec:
    """Section 5.7's scaling testbed at any GPU count: same dual-socket
    750 GB host, 1..8 GPUs populated."""
    from repro.hardware.interconnect import TopologySpec

    base = eight_gpu_commodity_server()
    return ServerSpec(
        n_gpus=n_gpus,
        gpu=base.gpu,
        host=base.host,
        topology=TopologySpec(n_gpus=n_gpus, gpus_per_switch=4),
    )
