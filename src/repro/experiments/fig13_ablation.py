"""Figure 13: efficiency breakdown of Harmony's optimizations.

Turn each optimization off in isolation (keeping the rest on) for both
Harmony DP and PP training GPT2 on 4 GPUs; report the slowdown relative
to all-optimizations-on.  "Config search off" substitutes the paper's
expert-picked configuration: a uniform layer split with one microbatch
size shared between the passes.
"""

from __future__ import annotations

from repro.core.config import Configuration, even_packs
from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import Row, render, server_for

MODEL = "gpt2"
MINIBATCH = 64
ABLATIONS = ("grouping", "jit", "p2p", "prefetch", "offload_optimizer")


def _expert_config(harmony: Harmony) -> Configuration:
    """A plausible hand-picked configuration: equal-count packs sized to
    the GPU count, one microbatch size for both passes."""
    n_layers = len(harmony.plan().profiles)
    n_gpus = harmony.server.n_gpus
    packs = even_packs(n_layers, 2 * n_gpus)
    return Configuration(u_f=4, packs_f=packs, u_b=4, packs_b=packs)


def run(fast: bool = False) -> list[Row]:
    rows: list[Row] = []
    modes = ("pp",) if fast else ("dp", "pp")
    for mode in modes:
        base = Harmony(MODEL, server_for(4), MINIBATCH,
                       options=HarmonyOptions(mode=mode))
        base_config = base.plan().config
        base_time = base.run().metrics.iteration_time
        rows.append({
            "mode": f"harmony-{mode}",
            "ablation": "(all on)",
            "iteration(s)": base_time,
            "slowdown": 1.0,
        })
        for ablation in ABLATIONS:
            # Keep the all-on configuration and toggle only the mechanism,
            # isolating each optimization's contribution (re-searching
            # would let the scheduler partially compensate).
            options = HarmonyOptions(mode=mode).without(ablation)
            harmony = Harmony(MODEL, server_for(4), MINIBATCH, options=options)
            plan = harmony.plan(config=base_config)
            time = harmony.run(plan=plan).metrics.iteration_time
            rows.append({
                "mode": f"harmony-{mode}",
                "ablation": ablation,
                "iteration(s)": time,
                "slowdown": time / base_time,
            })
        # Configuration search replaced by an expert-picked config.
        expert_plan = base.plan(config=_expert_config(base))
        time = base.run(plan=expert_plan).metrics.iteration_time
        rows.append({
            "mode": f"harmony-{mode}",
            "ablation": "config_search",
            "iteration(s)": time,
            "slowdown": time / base_time,
        })
    return rows


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
