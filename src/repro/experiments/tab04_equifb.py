"""Table 4: Equi-FB versus Distinct-FB configuration search.

Equi-FB reuses the backward microbatch size and packs for the forward
pass; Distinct-FB searches them independently.  The paper finds
Distinct-FB up to 29% faster, with CNNs benefitting most (their per-layer
characteristics are irregular, so the optimal forward and backward
partitions differ).
"""

from __future__ import annotations

from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import Row, render, server_for

MODELS = ("bert96", "gpt2", "vgg416", "resnet1k")
MINIBATCH = 16


def run(fast: bool = False, models: tuple[str, ...] = MODELS) -> list[Row]:
    if fast:
        models = ("gpt2", "resnet1k")
    rows: list[Row] = []
    for model in models:
        times = {}
        for label, equi in (("equi-fb", True), ("distinct-fb", False)):
            harmony = Harmony(
                model, server_for(4), MINIBATCH,
                options=HarmonyOptions(mode="pp", equi_fb=equi),
            )
            times[label] = harmony.run().metrics.iteration_time
        rows.append({
            "model": model,
            "equi_fb(s)": times["equi-fb"],
            "distinct_fb(s)": times["distinct-fb"],
            "improvement(%)": 100.0 * (times["equi-fb"] - times["distinct-fb"])
            / times["equi-fb"],
        })
    return rows


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
