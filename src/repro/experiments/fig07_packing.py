"""Figure 7: greedy memory-maximal packing versus balanced-time packing.

Greedily growing packs to the memory limit yields coarse tasks with
unequal runtimes -- stragglers in the wrap-around pipeline -- while
balanced-time packing (Algorithm 2) trades slightly smaller packs for
even per-pack times and markedly lower GPU idle time.
"""

from __future__ import annotations

from repro.core.config import Configuration
from repro.core.harmony import Harmony, HarmonyOptions
from repro.core.packing import (
    balanced_time_packing,
    greedy_memory_packing,
    pack_imbalance,
)
from repro.experiments.common import Row, render, server_for
from repro.graph.layer import Phase

MODEL = "gpt2"
MINIBATCH = 32


def run(fast: bool = False) -> list[Row]:
    server = server_for(4)
    harmony = Harmony(MODEL, server, MINIBATCH,
                      options=HarmonyOptions(mode="pp"))
    base = harmony.plan()
    profiles = base.profiles
    capacity = int(server.gpu.memory_bytes * 0.45)

    rows: list[Row] = []
    for method, packer in (
        ("balanced-time", balanced_time_packing),
        ("greedy-max", greedy_memory_packing),
    ):
        u_b = base.config.u_b
        u_f = base.config.u_f
        packs_b = packer(Phase.BWD, u_b, profiles, capacity)
        if method == "balanced-time":
            packs_f = balanced_time_packing(Phase.FWD, u_f, profiles,
                                            capacity, backward_packs=packs_b)
        else:
            packs_f = greedy_memory_packing(Phase.FWD, u_f, profiles, capacity)
        config = Configuration(u_f=u_f, packs_f=packs_f, u_b=u_b,
                               packs_b=packs_b)
        plan = harmony.plan(config=config)
        metrics = harmony.run(plan=plan).metrics
        idle = max(metrics.idle_fraction(g) for g in range(4))
        rows.append({
            "method": method,
            "|P_F|": len(packs_f),
            "|P_B|": len(packs_b),
            "bwd_time_imbalance": pack_imbalance(profiles, Phase.BWD,
                                                 packs_b, u_b),
            "iteration(s)": metrics.iteration_time,
            "max_gpu_idle(%)": idle * 100,
        })
    return rows


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
