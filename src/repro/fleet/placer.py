"""Resource-sensitive co-placement of jobs onto a shared server fleet.

The placer answers one question deterministically: *where on the fleet
do this job's logical devices go, and how much of each GPU does it get?*
Every GPU's residual memory is tracked as an exact
:class:`~fractions.Fraction` in ``[0, 1]`` of the planned card -- the
same number :class:`~repro.virt.devices.PhysicalDevice.memory_scale`
speaks -- so placement arithmetic can never drift and a carved partition
round-trips bit-exactly into the capacity analyzer's per-device vector.

The placement ladder, cheapest isolation first (Synergy's insight that
jobs are *resource-sensitive* -- a job declares the memory share it
needs -- makes the sharing rungs genuinely reachable):

1. **full-width** -- a single server has ``gpus`` devices with residual
   >= the requested share.  A full-memory job on fully free devices gets
   an *identity* bind (bit-identical to its solo run by construction);
   a fractional share gets a *partition* bind (``memory_scale = share``),
   letting later tenants co-reside on the leftover fractions.
2. **time-slice** -- no server is wide enough: the widest eligible
   server hosts the job on fewer devices via round-robin
   :meth:`~repro.virt.devices.DeviceBinding.pack` (several logical
   devices per GPU, deterministic FIFO multiplexing).

Device choice within a server is best-fit (smallest residual first, then
lowest index): partially carved GPUs fill up before fresh ones are
touched, which is what keeps whole servers free for identity placements.
No randomness anywhere -- the placer is a pure function of its state, so
seeded storms through it are bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Optional, Union

from repro.cluster.spec import ClusterSpec, homogeneous_cluster
from repro.common.errors import SimulationError
from repro.virt.devices import DeviceBinding, PhysicalDevice, VirtualTopology

if TYPE_CHECKING:
    from repro.core.harmony import HarmonyPlan
    from repro.virt.bind import BoundPlan

ShareLike = Union[Fraction, float, int]


class NoCapacityError(SimulationError):
    """Raised by :meth:`FleetPlacer.require` when nothing fits."""


def fleet_of(n_servers: int, gpus_per_server: int = 4) -> ClusterSpec:
    """A homogeneous commodity fleet: the default placement testbed."""
    from repro.experiments.common import server_for

    return homogeneous_cluster(n_servers, server_for(gpus_per_server))


@dataclass(frozen=True)
class FleetReservation:
    """One tenant's carved slice of one server.

    ``devices`` are the server's GPU indices backing the job, in the
    dense order the job's bind sees them (slice device ``i`` is fleet
    GPU ``devices[i]``).  ``share`` is the exact memory fraction charged
    to each listed device; ``n_logical`` is the job's logical device
    count (> ``len(devices)`` only for time-slice placements).
    """

    token: int
    tenant: str
    server: int
    devices: tuple[int, ...]
    share: Fraction
    n_logical: int
    kind: str  # "identity" | "partition" | "timeslice"

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def gpu_share(self) -> Fraction:
        """Total fleet GPU capacity this reservation holds."""
        return self.share * len(self.devices)

    def binding(self) -> DeviceBinding:
        """The :class:`DeviceBinding` realizing this placement.

        A full-share, full-width reservation is the identity binding --
        the bound graph is the logical graph *object*, so execution is
        bit-identical to the solo run.  A fractional share carves the
        tenant's memory partition via ``memory_scale``; a time-slice
        reservation round-robins the logical devices onto the slice.
        """
        k = len(self.devices)
        if self.share == 1:
            if k == self.n_logical:
                return DeviceBinding.identity(k)
            return DeviceBinding.pack(self.n_logical,
                                      VirtualTopology.uniform(k))
        topology = VirtualTopology(tuple(
            PhysicalDevice(i, flops_scale=1.0, memory_scale=float(self.share))
            for i in range(k)
        ))
        return DeviceBinding.pack(self.n_logical, topology)

    def describe(self) -> str:
        slots = ", ".join(f"gpu{g}" for g in self.devices)
        return (f"{self.kind} placement for {self.tenant}: "
                f"{self.n_logical} logical device(s) on s{self.server}"
                f"[{slots}] at share {self.share}")


class FleetPlacer:
    """Deterministic Fraction-exact placement over a shared fleet.

    ``allow_sharing=False`` restricts eligibility to fully free GPUs
    (no cross-tenant co-residency); ``allow_timeslice=False`` turns off
    the narrowing rung, so jobs either get their full width or nothing.
    """

    def __init__(self, cluster: ClusterSpec, *,
                 allow_sharing: bool = True,
                 allow_timeslice: bool = True):
        self.cluster = cluster
        self.allow_sharing = allow_sharing
        self.allow_timeslice = allow_timeslice
        #: residual memory fraction per [server][gpu], exact
        self._residual: list[list[Fraction]] = [
            [Fraction(1)] * spec.n_gpus for spec in cluster.servers
        ]
        self._active: dict[int, FleetReservation] = {}
        self._next_token = 0
        self.placements = 0
        self.releases = 0

    # -- capacity queries --------------------------------------------------------

    @property
    def n_servers(self) -> int:
        return self.cluster.n_servers

    @property
    def total_gpus(self) -> int:
        return self.cluster.total_gpus

    @property
    def active(self) -> tuple[FleetReservation, ...]:
        """Live reservations, oldest first (token order)."""
        return tuple(
            self._active[t] for t in sorted(self._active)
        )

    def residual(self, server: int, gpu: int) -> Fraction:
        return self._residual[server][gpu]

    def occupancy(self) -> Fraction:
        """Occupied fraction of the whole fleet's GPU capacity, exact."""
        held = sum(
            (Fraction(1) - r) for row in self._residual for r in row
        )
        return Fraction(held, self.total_gpus)

    def tenants_on(self, server: int, gpu: int) -> tuple[str, ...]:
        """Tenants co-resident on one GPU, oldest placement first."""
        return tuple(
            res.tenant for res in self.active
            if res.server == server and gpu in res.devices
        )

    # -- placement ---------------------------------------------------------------

    def reserve(self, tenant: str, gpus: int,
                share: ShareLike = 1) -> Optional[FleetReservation]:
        """Place ``gpus`` logical devices for ``tenant``; None if nothing
        on the fleet can host them at the requested memory share."""
        share = Fraction(share)
        if gpus < 1:
            raise SimulationError(f"gpus must be >= 1, got {gpus}")
        if not 0 < share <= 1:
            raise SimulationError(
                f"memory share must be in (0, 1], got {share}"
            )
        floor = Fraction(1) if not self.allow_sharing else share

        def eligible(server: int) -> list[int]:
            row = self._residual[server]
            picked = [g for g in range(len(row)) if row[g] >= floor]
            # Best-fit: fill partially carved GPUs before fresh ones so
            # whole servers stay free for identity placements.
            picked.sort(key=lambda g: (row[g], g))
            return picked

        # Rung 1: full width on one server.
        for server in range(self.n_servers):
            slots = eligible(server)
            if len(slots) >= gpus:
                kind = "identity" if share == 1 else "partition"
                return self._commit(tenant, server,
                                    tuple(sorted(slots[:gpus])),
                                    share, gpus, kind)

        # Rung 2: time-slice onto the widest eligible server.
        if self.allow_timeslice:
            best_server, best_slots = -1, []
            for server in range(self.n_servers):
                slots = eligible(server)
                if len(slots) > len(best_slots):
                    best_server, best_slots = server, slots
            if best_slots:
                width = min(gpus, len(best_slots))
                return self._commit(tenant, best_server,
                                    tuple(sorted(best_slots[:width])),
                                    share, gpus, "timeslice")
        return None

    def require(self, tenant: str, gpus: int,
                share: ShareLike = 1) -> FleetReservation:
        """:meth:`reserve`, but a miss raises :class:`NoCapacityError`."""
        reservation = self.reserve(tenant, gpus, share)
        if reservation is None:
            raise NoCapacityError(
                f"no server can host {gpus} device(s) for {tenant} "
                f"at share {Fraction(share)}"
            )
        return reservation

    def _commit(self, tenant: str, server: int, devices: tuple[int, ...],
                share: Fraction, n_logical: int,
                kind: str) -> FleetReservation:
        row = self._residual[server]
        for gpu in devices:
            row[gpu] -= share
            if row[gpu] < 0:  # pragma: no cover - guarded by eligibility
                raise SimulationError(
                    f"s{server}/gpu{gpu} oversubscribed to {row[gpu]}"
                )
        reservation = FleetReservation(
            token=self._next_token, tenant=tenant, server=server,
            devices=devices, share=share, n_logical=n_logical, kind=kind,
        )
        self._next_token += 1
        self._active[reservation.token] = reservation
        self.placements += 1
        return reservation

    def release(self, reservation: FleetReservation) -> None:
        """Return a reservation's capacity.  Double release is a bug and
        raises (mirrors the lifetime pass's double-free rule)."""
        if self._active.pop(reservation.token, None) is None:
            raise SimulationError(
                f"release of unknown/already released reservation "
                f"{reservation.token} ({reservation.tenant})"
            )
        row = self._residual[reservation.server]
        for gpu in reservation.devices:
            row[gpu] += reservation.share
            if row[gpu] > 1:  # pragma: no cover - implies corrupt state
                raise SimulationError(
                    f"s{reservation.server}/gpu{gpu} released past full: "
                    f"{row[gpu]}"
                )
        self.releases += 1

    # -- certification -----------------------------------------------------------

    def bind(self, reservation: FleetReservation, plan: "HarmonyPlan", *,
             verify: bool = True) -> "BoundPlan":
        """Realize a placement as an analyzer-certified bound plan.

        The plan must target exactly the reservation's logical device
        count.  Verification re-runs the full static pass set with the
        tenant's partition as the per-device capacity vector, so an
        accepted co-placement is *proved* to fit inside its share;
        :class:`~repro.common.errors.ScheduleAnalysisError` propagates
        when the partition is too small (callers release and shed).
        """
        from repro.virt.bind import bind as bind_plan

        if plan.graph.n_devices != reservation.n_logical:
            raise SimulationError(
                f"plan targets {plan.graph.n_devices} logical device(s) "
                f"but the reservation holds {reservation.n_logical}"
            )
        return bind_plan(plan, reservation.binding(), verify=verify)

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready deterministic state (floats are exact dyadics for
        the dyadic shares the workloads use)."""
        return {
            "servers": self.n_servers,
            "gpus": self.total_gpus,
            "placements": self.placements,
            "releases": self.releases,
            "active": len(self._active),
            "occupancy": float(self.occupancy()),
            "residual": [
                [float(r) for r in row] for row in self._residual
            ],
        }

    def describe(self) -> str:
        lines = [
            f"fleet: {self.n_servers} server(s) / {self.total_gpus} GPUs, "
            f"occupancy {float(self.occupancy()) * 100:.0f}%, "
            f"{self.placements} placement(s), {self.releases} release(s)"
        ]
        for server, row in enumerate(self._residual):
            slots = " ".join(f"gpu{g}:{row[g]}" for g in range(len(row)))
            lines.append(f"  s{server}: {slots}")
        return "\n".join(lines)
