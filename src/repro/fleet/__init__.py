"""Multi-tenant fleet co-placement: many jobs on shared servers.

A :class:`FleetPlacer` tracks per-server residual GPU/memory capacity
over a :class:`~repro.cluster.spec.ClusterSpec` and packs admitted jobs
onto it through :class:`~repro.virt.devices.DeviceBinding` -- the same
late-binding layer single-job binds use, not a new placement mechanism.
A placement is a :class:`FleetReservation`; turning it into something
executable goes through :meth:`FleetPlacer.bind`, which re-certifies the
job's plan with the static analyzer against the tenant's carved memory
partition.  See DESIGN.md §16.

    >>> from repro.fleet import FleetPlacer, fleet_of
    >>> placer = FleetPlacer(fleet_of(2, 4))
    >>> res = placer.reserve("tenant0", gpus=4)    # identity placement
    >>> bound = placer.bind(res, plan)             # doctest: +SKIP
"""

from repro.fleet.placer import (
    FleetPlacer,
    FleetReservation,
    NoCapacityError,
    fleet_of,
)

__all__ = [
    "FleetPlacer",
    "FleetReservation",
    "NoCapacityError",
    "fleet_of",
]
