"""Parametric capacity certificates: peak memory as a function of N.

The point capacity check (:mod:`repro.analysis.capacity`) certifies one
profiled plan.  This pass generalizes it: peak residency is bounded by a
symbolic *affine form* in the per-group microbatch count N, and the
certificate either holds for every N >= 1 or names the smallest
violating N -- the planner's whole parameter family is certified at
once, not one point.

Derivation (all integer arithmetic; these paths are deliberately free of
float accumulation and the project linter enforces that):

- **per GPU**: a task's planned ``resident_bytes`` splits into an
  N-independent part (weights, one in-flight microbatch's activations)
  and the group-boundary tensors it holds for neighbouring groups --
  exactly the bytes its ``LOCAL`` in-moves declare, which grow linearly
  with the group's microbatch count.  With ``resident(t, N) =
  max(0, resident_bytes - local_in) + local_in * N``, the device bound
  is the max over every ``fetch_slots``-consecutive window of the
  window's affine sum ``fixed_w + slope_w * N``.  At N = 1 this is
  identically the point check's bound;
- **host**: pinned state splits into model state (N-independent) and
  input staging buffers (linear in N, when the caller supplies the
  split via ``host_input_bytes``); every live checkpoint stash also
  scales with N.  ``peak(N) = (state - input) + (input + stash) * N``,
  again collapsing to the point check at N = 1.

Each scope yields one :class:`CapacityCertificate` for its *binding*
window -- the one violated at the smallest N.  A violation at N = 1
(``parametric/gpu-unsafe`` / ``parametric/host-unsafe``) is an error and
coincides with the point check; a finite ceiling N* > 1 is advisory
(``parametric/gpu-ceiling`` / ``parametric/host-ceiling``): the plan as
built is safe, but scaling the microbatch group past N* - 1 overflows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity, task_ref
from repro.analysis.passes import AnalysisPass, register
from repro.core.types import Channel, Task, TensorKind

_INF = None  # "no violating N" sentinel, for readability


@dataclass(frozen=True)
class CapacityCertificate:
    """An affine bound ``peak(N) = fixed + slope * N`` against a budget."""

    scope: str              # "gpu<d>" or "host"
    fixed_bytes: int        # N-independent component
    slope_bytes: int        # growth per unit of N
    capacity_bytes: int     # the hardware budget the bound is held to
    detail: str = ""        # what the binding window / split is

    def peak(self, n: int) -> int:
        """The certified peak-residency bound at microbatch count n."""
        return self.fixed_bytes + self.slope_bytes * n

    def smallest_violating_n(self) -> Optional[int]:
        """Least N >= 1 with ``peak(N) > capacity``; None if safe for all."""
        if self.peak(1) > self.capacity_bytes:
            return 1
        if self.slope_bytes <= 0:
            return _INF
        headroom = self.capacity_bytes - self.fixed_bytes
        return headroom // self.slope_bytes + 1

    @property
    def safe_for_all(self) -> bool:
        return self.smallest_violating_n() is None

    def describe(self) -> str:
        bound = (f"{self.scope}: peak(N) <= {self.fixed_bytes} + "
                 f"{self.slope_bytes}*N bytes vs capacity "
                 f"{self.capacity_bytes}")
        n = self.smallest_violating_n()
        verdict = ("safe for all N >= 1" if n is None
                   else f"violates at N = {n}")
        return f"{bound} -- {verdict}"


def _local_in_bytes(task: Task) -> int:
    return sum(
        m.nbytes for m in task.ins
        if m.channel is Channel.LOCAL and m.nbytes > 0
    )


def _window_names(tasks: list[Task]) -> str:
    return ", ".join(
        f"{task_ref(t.tid)} ({t.label or t.kind.value})" for t in tasks
    )


def _device_certificate(
    device: int, tasks: list[Task], window: int, capacity: int
) -> CapacityCertificate:
    """The binding (smallest violating N) window bound for one GPU."""
    slopes = [0 if t.on_cpu else _local_in_bytes(t) for t in tasks]
    fixeds = [
        0 if t.on_cpu else max(0, t.resident_bytes - slopes[i])
        for i, t in enumerate(tasks)
    ]
    best: Optional[CapacityCertificate] = None
    best_key: Optional[tuple[int, int]] = None
    for i in range(len(tasks)):
        cert = CapacityCertificate(
            scope=f"gpu{device}",
            fixed_bytes=sum(fixeds[i:i + window]),
            slope_bytes=sum(slopes[i:i + window]),
            capacity_bytes=capacity,
            detail=f"window {_window_names(tasks[i:i + window])}",
        )
        n = cert.smallest_violating_n()
        # Order by: violated earliest, then highest as-built peak.
        key = (n if n is not None else 1 << 62, -cert.peak(1))
        if best_key is None or key < best_key:
            best, best_key = cert, key
    if best is None:
        best = CapacityCertificate(
            scope=f"gpu{device}", fixed_bytes=0, slope_bytes=0,
            capacity_bytes=capacity, detail="no tasks bound to this GPU",
        )
    return best


def capacity_certificates(ctx: AnalysisContext) -> list[CapacityCertificate]:
    """Every scope's binding affine capacity bound (requires a server).

    One certificate per GPU, plus a host certificate when the caller
    supplied ``host_state_bytes`` (host fit for massive models is
    otherwise out of scope, mirroring the point check).
    """
    assert ctx.server is not None, "capacity certificates need a server"
    certs = [
        _device_certificate(
            device, tasks, ctx.fetch_slots, ctx.device_capacity(device)
        )
        for device, tasks in enumerate(ctx.device_order())
    ]
    if ctx.host_state_bytes is not None:
        stash = sum(
            move.nbytes
            for task in ctx.graph.tasks
            for move in task.outs
            if move.tensor is TensorKind.CKPT
        )
        state = ctx.host_state_bytes
        input_bytes = min(ctx.host_input_bytes or 0, state)
        certs.append(CapacityCertificate(
            scope="host",
            fixed_bytes=state - input_bytes,
            slope_bytes=input_bytes + stash,
            capacity_bytes=ctx.server.host.memory_bytes,
            detail=f"pinned state {state} bytes (input staging "
                   f"{input_bytes}) + checkpoint stash {stash} bytes",
        ))
    return certs


@register
class ParametricCapacityPass(AnalysisPass):
    name = "parametric"
    rules = (
        "parametric/gpu-unsafe",
        "parametric/gpu-ceiling",
        "parametric/host-unsafe",
        "parametric/host-ceiling",
    )

    def skip_reason(self, ctx: AnalysisContext) -> Optional[str]:
        if ctx.server is None:
            return "no server spec"
        return None

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        for cert in capacity_certificates(ctx):
            n = cert.smallest_violating_n()
            if n is None:
                continue  # safe for all N >= 1: nothing to flag
            kind = "host" if cert.scope == "host" else "gpu"
            device = (int(cert.scope[3:])
                      if cert.scope.startswith("gpu") else None)
            if n <= 1:
                yield Diagnostic(
                    f"parametric/{kind}-unsafe", Severity.ERROR,
                    f"{cert.describe()}; the plan overflows at its own "
                    f"microbatch count ({cert.detail})",
                    device=device,
                    hint="repack with a smaller capacity fraction or "
                         "shrink the microbatch group",
                )
            else:
                yield Diagnostic(
                    f"parametric/{kind}-ceiling", Severity.INFO,
                    f"{cert.describe()}; safe as built, ceiling at "
                    f"N = {n - 1} ({cert.detail})",
                    device=device,
                )
