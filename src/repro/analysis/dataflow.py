"""Tensor dataflow safety, by abstract interpretation of the moves.

Instead of running the simulator, walk the declared moves and check that
every consumed tensor can actually exist when it is fetched:

- ``dataflow/wrong-producer``: an in-move names a producer task whose
  kind cannot generate that tensor family (e.g. a weight update producing
  an activation);
- ``dataflow/use-before-produce``: a host-staged fetch (``Channel.SWAP``
  with a ``src_task``) whose producer never wrote that tensor family back
  to host -- the Runtime would wait on ``outs_flushed`` and then read
  bytes nobody staged;
- ``dataflow/double-stash``: one task emits the same (tensor, label)
  output twice, double-writing (and later double-freeing) the stash slot;
- ``dataflow/unaccounted-resident``: a GPU task fetches state across
  PCIe but declares no planned residency, so the capacity certification
  under-counts it (warning).

Tensor kinds are compared by *family* -- a producer's ``Y`` satisfies a
consumer's ``X`` (the same bytes seen from both ends of the chain), and
``DX``/``DY`` pair the same way.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity, task_ref
from repro.analysis.passes import AnalysisPass, register
from repro.core.types import Channel, Task, TaskKind, TensorKind

_FAMILY = {
    TensorKind.X: "activation",
    TensorKind.Y: "activation",
    TensorKind.DX: "activation-grad",
    TensorKind.DY: "activation-grad",
    TensorKind.CKPT: "checkpoint",
    TensorKind.W: "weights",
    TensorKind.DW: "gradients",
    TensorKind.K: "optimizer-state",
}

_FWD_FAMILIES = {"activation", "checkpoint"}
_BWD_FAMILIES = {"activation-grad", "gradients"}
_UPD_FAMILIES = {"weights", "optimizer-state"}


def _producible(task: Task) -> set[str]:
    """Tensor families ``task`` can generate."""
    if task.kind is TaskKind.FWD:
        return set(_FWD_FAMILIES)
    if task.kind is TaskKind.BWD:
        produced = set(_BWD_FAMILIES)
        if task.fused:        # jit-compute: runs its forward pass too
            produced |= _FWD_FAMILIES
        return produced
    return set(_UPD_FAMILIES)


@register
class DataflowPass(AnalysisPass):
    name = "dataflow"
    rules = (
        "dataflow/wrong-producer",
        "dataflow/use-before-produce",
        "dataflow/double-stash",
        "dataflow/unaccounted-resident",
    )

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        graph = ctx.graph
        n_tasks = len(graph.tasks)
        for task in graph.tasks:
            for move in task.ins:
                if move.src_task is None or move.nbytes == 0:
                    continue
                if not 0 <= move.src_task < n_tasks:
                    continue  # structure pass reports dangling sources
                producer = graph.tasks[move.src_task]
                family = _FAMILY[move.tensor]
                if family not in _producible(producer):
                    yield Diagnostic(
                        "dataflow/wrong-producer", Severity.ERROR,
                        f"task {task_ref(task.tid)} consumes {family} "
                        f"from {producer.kind.value} task "
                        f"{task_ref(producer.tid)}, which cannot "
                        f"produce it",
                        task=task.tid, device=task.device, move=move.label,
                    )
                elif move.channel is Channel.SWAP and not _staged(
                    producer, family
                ):
                    yield Diagnostic(
                        "dataflow/use-before-produce", Severity.ERROR,
                        f"task {task_ref(task.tid)} swaps in {family} "
                        f"stashed by {task_ref(producer.tid)}, but "
                        f"{task_ref(producer.tid)} never writes that "
                        "tensor back to host",
                        task=task.tid, device=task.device, move=move.label,
                        hint="add the matching host-channel out-move on "
                             "the producer (or fetch over a streaming "
                             "channel)",
                    )

            seen: set[tuple[TensorKind, str]] = set()
            for move in task.outs:
                if move.nbytes == 0:
                    continue
                key = (move.tensor, move.label)
                if key in seen:
                    yield Diagnostic(
                        "dataflow/double-stash", Severity.ERROR,
                        f"task {task_ref(task.tid)} stashes "
                        f"{move.tensor.value} {move.label!r} twice; the "
                        "second flush double-writes (and later "
                        "double-frees) the stash slot",
                        task=task.tid, device=task.device, move=move.label,
                    )
                seen.add(key)

            fetched = sum(
                move.nbytes for move in task.ins
                if move.channel.crosses_pcie
            )
            if not task.on_cpu and fetched > 0 and task.resident_bytes == 0:
                yield Diagnostic(
                    "dataflow/unaccounted-resident", Severity.WARNING,
                    f"task {task_ref(task.tid)} fetches {fetched} bytes "
                    "onto the GPU but plans zero resident bytes; the "
                    "fetched state leaks out of the capacity bound",
                    task=task.tid, device=task.device,
                    hint="set Task.resident_bytes to the planned working "
                         "set",
                )


def _staged(producer: Task, family: str) -> bool:
    """Did ``producer`` write this tensor family back to host?"""
    return any(
        move.channel.via_host
        and move.nbytes > 0
        and _FAMILY[move.tensor] == family
        for move in producer.outs
    )
