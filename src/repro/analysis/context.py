"""The bundle of facts an analysis pass may consult.

Only the graph is mandatory.  Passes that need machine context (capacity
certification, topology legality) or scheduling context (the ablation
lint) declare it and are skipped -- with an explicit reason in the report
-- when the caller cannot supply it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.taskgraph import ScheduleOptions
from repro.core.types import Task, TaskGraph
from repro.hardware.server import ServerSpec


@dataclass
class AnalysisContext:
    """Inputs to one analyzer invocation."""

    graph: TaskGraph
    server: Optional[ServerSpec] = None
    options: Optional[ScheduleOptions] = None
    # Host-resident model state + input buffers, for host-capacity
    # certification (mirrors Executor's host working-set bound).
    host_state_bytes: Optional[int] = None
    # The portion of host_state_bytes that is input staging and so grows
    # with the microbatch count; lets the parametric pass split the host
    # bound into fixed and per-N components.  None: treat all as fixed.
    host_input_bytes: Optional[int] = None
    # Whether the Runtime will run with prefetch double-buffering; bounds
    # how many tasks hold GPU residency concurrently per device.
    prefetch: bool = True
    # Per-device GPU memory override (bytes, indexed by device id) for
    # heterogeneous bindings; devices beyond the list -- and all devices
    # when None -- fall back to the server spec's uniform GPU memory.
    device_memory: Optional[list[int]] = None

    _per_device: Optional[list[list[Task]]] = field(
        default=None, init=False, repr=False
    )

    @property
    def fetch_slots(self) -> int:
        """Concurrent per-device task windows (Executor's slot capacity)."""
        return 2 if self.prefetch else 1

    def device_capacity(self, device: int) -> int:
        """GPU memory capacity of ``device`` in bytes (requires a server).

        Honors the per-device override of a heterogeneous binding;
        integer-exact (the override is computed with Fraction arithmetic
        upstream), so capacity passes stay bit-stable.
        """
        assert self.server is not None, "device capacity needs a server"
        if (self.device_memory is not None
                and 0 <= device < len(self.device_memory)):
            return self.device_memory[device]
        return self.server.gpu.memory_bytes

    def device_order(self) -> list[list[Task]]:
        """Tasks per device in issue order, cached across passes.

        Falls back to bucketing by ``task.device`` directly when the graph
        is structurally broken (non-dense tids), so later passes can still
        run and report their own findings.
        """
        if self._per_device is None:
            buckets: list[list[Task]] = [
                [] for _ in range(self.graph.n_devices)
            ]
            for task in self.graph.tasks:
                if 0 <= task.device < self.graph.n_devices:
                    buckets[task.device].append(task)
            self._per_device = buckets
        return self._per_device
