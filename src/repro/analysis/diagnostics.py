"""Diagnostic vocabulary of the static schedule analyzer.

Every pass reports findings as :class:`Diagnostic` values -- a stable rule
id (``pass-name/rule-name``), a severity, a human message, and the task /
device / move the finding is anchored to.  The runtime and the analyzer
share one naming scheme for schedule entities (:func:`task_ref`,
:func:`stream_ref`), so a diagnostic printed before execution and a
:class:`~repro.common.errors.SimulationError` raised during execution
point at the same identifiers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.common.errors import ScheduleAnalysisError


def task_ref(tid: int) -> str:
    """Canonical name of a task, shared with runtime error messages."""
    return f"t{tid}"


def stream_ref(device: int, stream: str) -> str:
    """Canonical name of a per-GPU stream, shared with the runtime."""
    return f"gpu{device}.{stream}"


class Severity(enum.IntEnum):
    """How bad a finding is.

    ``ERROR`` means the schedule is unsafe to execute (it can deadlock,
    read unproduced data, or exceed a hard capacity); ``WARNING`` marks a
    suspicious construction that still executes; ``INFO`` is advisory.
    """

    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass."""

    rule: str                       # "pass/rule", stable across releases
    severity: Severity
    message: str
    task: Optional[int] = None      # offending task tid
    device: Optional[int] = None    # owning GPU
    move: Optional[str] = None      # offending move label
    hint: Optional[str] = None      # how to fix it

    @property
    def location(self) -> str:
        parts = []
        if self.task is not None:
            parts.append(task_ref(self.task))
        if self.device is not None:
            parts.append(f"gpu{self.device}")
        if self.move:
            parts.append(f"move {self.move!r}")
        return "/".join(parts) if parts else "<graph>"

    def describe(self) -> str:
        text = (
            f"{self.severity.name.lower():<7} {self.rule:<28} "
            f"{self.location}: {self.message}"
        )
        if self.hint:
            text += f"\n        hint: {self.hint}"
        return text


@dataclass(frozen=True)
class Waiver:
    """An acknowledged, justified exception to one rule.

    Unlike blanket suppression, a waived finding still *surfaces* in the
    report -- demoted to INFO under ``waiver/<rule>`` with the
    justification attached -- and a waiver that matches nothing is itself
    an error (``waiver/unused``), so stale waivers die with the finding
    they excused.
    """

    rule: str               # the rule id being waived, e.g. "capacity/gpu"
    justification: str      # why the finding is acceptable here

    def rewrite(self, diagnostic: Diagnostic) -> Diagnostic:
        """The INFO-severity surfaced form of a waived diagnostic."""
        return Diagnostic(
            rule=f"waiver/{self.rule.replace('/', '.')}",
            severity=Severity.INFO,
            message=f"waived: {diagnostic.message}",
            task=diagnostic.task,
            device=diagnostic.device,
            move=diagnostic.move,
            hint=f"justification: {self.justification}",
        )


@dataclass
class PassResult:
    """Outcome of running (or skipping) one pass."""

    name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    skipped: Optional[str] = None   # reason the pass could not run
    suppressed: int = 0             # diagnostics dropped by rule suppression

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def summary(self) -> str:
        if self.skipped:
            status = f"skipped ({self.skipped})"
        elif not self.diagnostics:
            status = "ok"
        else:
            bits = []
            if self.errors:
                bits.append(f"{len(self.errors)} error(s)")
            if self.warnings:
                bits.append(f"{len(self.warnings)} warning(s)")
            if not bits:
                bits.append(f"{len(self.diagnostics)} note(s)")
            status = ", ".join(bits)
        if self.suppressed:
            status += f" [{self.suppressed} suppressed]"
        return f"{self.name:<10} {status}"


@dataclass
class AnalysisReport:
    """Everything the analyzer found, grouped per pass."""

    graph_mode: str
    n_tasks: int
    results: list[PassResult] = field(default_factory=list)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return [d for result in self.results for d in result.diagnostics]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were reported."""
        return not self.errors

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def has(self, rule: str) -> bool:
        return bool(self.by_rule(rule))

    def describe(self) -> str:
        lines = [
            f"analysis of {self.graph_mode!r} schedule "
            f"({self.n_tasks} tasks):"
        ]
        lines += [f"  {result.summary()}" for result in self.results]
        for diagnostic in self.diagnostics:
            lines.append("  " + diagnostic.describe())
        verdict = (
            "schedule is safe" if self.ok
            else f"schedule REJECTED ({len(self.errors)} error(s))"
        )
        ran = [r for r in self.results if not r.skipped]
        lines.append(
            f"{len(ran)} pass(es), {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) -- {verdict}"
        )
        return "\n".join(lines)

    def raise_if_errors(self) -> None:
        if self.ok:
            return
        shown = self.errors[:8]
        detail = "; ".join(
            f"{d.rule} @ {d.location}: {d.message}" for d in shown
        )
        more = len(self.errors) - len(shown)
        if more > 0:
            detail += f" (+{more} more)"
        raise ScheduleAnalysisError(
            f"static analysis rejected the {self.graph_mode!r} schedule: "
            f"{detail}"
        )
