"""Seeded-defect injectors, for exercising the analyzer end to end.

Each injector corrupts a freshly built (and previously safe) task graph
with exactly one class of bug and names the rule that must catch it.  The
CLI's ``check --inject`` flag and the adversarial tests drive these, so a
regression that silences a rule is caught by an exact-id assertion rather
than by a hand-maintained fixture graph.

An injector mutates the graph in place and returns
``(options, expected_rule)`` -- options may differ from the input when
the defect is an ablation inconsistency rather than a graph edit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.analysis.dataflow import _FAMILY, _producible
from repro.core.taskgraph import ScheduleOptions
from repro.core.types import Channel, Move, Task, TaskGraph, TensorKind

_REPRESENTATIVE = {
    "activation": TensorKind.Y,
    "activation-grad": TensorKind.DY,
    "checkpoint": TensorKind.CKPT,
    "weights": TensorKind.W,
    "gradients": TensorKind.DW,
    "optimizer-state": TensorKind.K,
}

Injector = Callable[[TaskGraph, ScheduleOptions], tuple[ScheduleOptions, str]]


def _producible_tensor(task: Task) -> TensorKind:
    """A tensor kind ``task`` can legally produce."""
    return _REPRESENTATIVE[sorted(_producible(task))[0]]


def inject_cycle(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, str]:
    """Make an early task wait on a later one queued behind it."""
    early = next(t for t in graph.tasks if not t.on_cpu)
    late = next(
        t for t in graph.tasks
        if t.device == early.device and t.tid > early.tid and not t.on_cpu
    )
    early.ins.append(Move(
        _producible_tensor(late), 1, Channel.MSG,
        src_task=late.tid, label="injected-backward-dep",
    ))
    return options, "deadlock/cycle"


def inject_use_before_produce(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, str]:
    """Swap in a tensor family its producer never staged on the host."""
    for producer in graph.tasks:
        if producer.tid == len(graph.tasks) - 1:
            continue  # the consumer must come later in program order
        staged = {
            _FAMILY[move.tensor]
            for move in producer.outs
            if move.channel.via_host and move.nbytes > 0
        }
        unstaged = sorted(_producible(producer) - staged)
        if unstaged:
            consumer = graph.tasks[-1]
            consumer.ins.append(Move(
                _REPRESENTATIVE[unstaged[0]], 1, Channel.SWAP,
                src_task=producer.tid, label="injected-phantom-stash",
            ))
            return options, "dataflow/use-before-produce"
    raise RuntimeError("every task stages everything it can produce")


def inject_over_capacity(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, str]:
    """Inflate one task's planned working set past any real GPU."""
    task = next(t for t in graph.tasks if not t.on_cpu)
    task.resident_bytes = 1 << 50  # 1 PiB
    return options, "capacity/gpu"


def inject_illegal_p2p(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, str]:
    """Pull over a p2p path from a GPU the PCIe tree does not wire."""
    task = next(t for t in graph.tasks if not t.on_cpu)
    task.ins.append(Move(
        TensorKind.X, 1, Channel.P2P,
        peer=graph.n_devices + 7, label="injected-ghost-peer",
    ))
    return options, "channel/bad-peer"


def inject_ablation(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, str]:
    """Claim an optimization is off that the graph plainly uses."""
    if any(len(t.microbatches) > 1 for t in graph.tasks if not t.on_cpu):
        return replace(options, grouping=False), "ablation/grouping"
    # Single-microbatch graphs: misstate the offload switch instead.
    return (
        replace(options, offload_optimizer=not options.offload_optimizer),
        "ablation/offload",
    )


#: Defect name -> injector, one per seeded defect kind.
INJECTIONS: dict[str, Injector] = {
    "cycle": inject_cycle,
    "use-before-produce": inject_use_before_produce,
    "over-capacity": inject_over_capacity,
    "illegal-p2p": inject_illegal_p2p,
    "ablation": inject_ablation,
}


def inject(
    name: str, graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, str]:
    """Apply the named defect; returns (options, expected rule id)."""
    try:
        injector = INJECTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown defect {name!r}; known: {', '.join(INJECTIONS)}"
        ) from None
    return injector(graph, options)
