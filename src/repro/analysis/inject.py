"""Seeded-defect injectors, for exercising the analyzer end to end.

Each injector corrupts a freshly built (and previously safe) task graph
with exactly one class of bug and names the rules that must catch it.
The CLI's ``check --inject`` flag and the adversarial tests drive these,
so a regression that silences a rule is caught by an exact-id assertion
rather than by a hand-maintained fixture graph.

An injector mutates the graph in place and returns
``(options, expected_rules)`` -- options may differ from the input when
the defect is an ablation inconsistency rather than a graph edit, and
``expected_rules`` lists *every* rule the defect must trip (a defect
that breaks two certifications, e.g. point capacity and its parametric
twin, names both).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.analysis.dataflow import _FAMILY, _producible
from repro.core.taskgraph import ScheduleOptions
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind

_REPRESENTATIVE = {
    "activation": TensorKind.Y,
    "activation-grad": TensorKind.DY,
    "checkpoint": TensorKind.CKPT,
    "weights": TensorKind.W,
    "gradients": TensorKind.DW,
    "optimizer-state": TensorKind.K,
}

Injector = Callable[
    [TaskGraph, ScheduleOptions], tuple[ScheduleOptions, tuple[str, ...]]
]


def _producible_tensor(task: Task) -> TensorKind:
    """A tensor kind ``task`` can legally produce."""
    return _REPRESENTATIVE[sorted(_producible(task))[0]]


def _first_update(graph: TaskGraph) -> Task:
    return next(t for t in graph.tasks if t.kind is TaskKind.UPD)


def _append_task(graph: TaskGraph, **kwargs) -> Task:
    return graph.add(Task(tid=len(graph.tasks), **kwargs))


def inject_cycle(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Make an early task wait on a later one queued behind it."""
    early = next(t for t in graph.tasks if not t.on_cpu)
    late = next(
        t for t in graph.tasks
        if t.device == early.device and t.tid > early.tid and not t.on_cpu
    )
    early.ins.append(Move(
        _producible_tensor(late), 1, Channel.MSG,
        src_task=late.tid, label="injected-backward-dep",
    ))
    return options, ("deadlock/cycle",)


def inject_use_before_produce(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Swap in a tensor family its producer never staged on the host."""
    for producer in graph.tasks:
        if producer.tid == len(graph.tasks) - 1:
            continue  # the consumer must come later in program order
        staged = {
            _FAMILY[move.tensor]
            for move in producer.outs
            if move.channel.via_host and move.nbytes > 0
        }
        unstaged = sorted(_producible(producer) - staged)
        if unstaged:
            consumer = graph.tasks[-1]
            consumer.ins.append(Move(
                _REPRESENTATIVE[unstaged[0]], 1, Channel.SWAP,
                src_task=producer.tid, label="injected-phantom-stash",
            ))
            return options, ("dataflow/use-before-produce",)
    raise RuntimeError("every task stages everything it can produce")


def inject_over_capacity(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Inflate one task's planned working set past any real GPU."""
    task = next(t for t in graph.tasks if not t.on_cpu)
    task.resident_bytes = 1 << 50  # 1 PiB
    # The point check and the N = 1 of its parametric generalization are
    # the same bound; both must reject.
    return options, ("capacity/gpu", "parametric/gpu-unsafe")


def inject_illegal_p2p(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Pull over a p2p path from a GPU the PCIe tree does not wire."""
    task = next(t for t in graph.tasks if not t.on_cpu)
    task.ins.append(Move(
        TensorKind.X, 1, Channel.P2P,
        peer=graph.n_devices + 7, label="injected-ghost-peer",
    ))
    return options, ("channel/bad-peer",)


def inject_ablation(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Claim an optimization is off that the graph plainly uses."""
    if any(len(t.microbatches) > 1 for t in graph.tasks if not t.on_cpu):
        return replace(options, grouping=False), ("ablation/grouping",)
    # Single-microbatch graphs: misstate the offload switch instead.
    return (
        replace(options, offload_optimizer=not options.offload_optimizer),
        ("ablation/offload",),
    )


def inject_war_race(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Unmoor an update from the backward pass that feeds it.

    Stripping the UPD task's dependency moves leaves its in-place write
    to shared model state unordered with the compute tasks still reading
    those weights -- the update can clobber state mid-read.
    """
    update = next(
        t for t in graph.tasks if t.kind is TaskKind.UPD and t.ins
    )
    update.ins.clear()
    return options, ("hb/war-race",)


def inject_rw_race(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Queue a late consumer of weights an update writes concurrently.

    The appended reader fetches the updated layers' weights with no
    dependency on the update task, so it may observe a half-applied
    update.
    """
    update = _first_update(graph)
    reader = _append_task(
        graph,
        kind=TaskKind.FWD,
        first_layer=update.first_layer,
        last_layer=update.last_layer,
        device=(update.device + 1) % graph.n_devices,
        microbatches=(1,),
        resident_bytes=1,
        label="injected-stale-reader",
    )
    reader.ins.append(Move(
        TensorKind.W, 1, Channel.SHM, label="injected-unordered-read",
    ))
    return options, ("hb/rw-race",)


def inject_waw_race(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Duplicate an update so two writers race on one state slice.

    The twin shares the original's dependencies (so neither is ordered
    after the other) and its layer span (so ownership is also released
    twice).
    """
    update = _first_update(graph)
    twin = _append_task(
        graph,
        kind=TaskKind.UPD,
        first_layer=update.first_layer,
        last_layer=update.last_layer,
        device=update.device,
        microbatches=update.microbatches,
        on_cpu=update.on_cpu,
        label="injected-twin-update",
    )
    twin.ins.extend(update.ins)
    return options, ("hb/waw-race", "lifetime/double-release")


def inject_double_release(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Release update ownership of one state slice twice, in order.

    Unlike the WAW twin, this duplicate *depends on* the original, so
    the writes are ordered and only the ownership discipline is broken.
    """
    update = _first_update(graph)
    twin = _append_task(
        graph,
        kind=TaskKind.UPD,
        first_layer=update.first_layer,
        last_layer=update.last_layer,
        device=update.device,
        microbatches=update.microbatches,
        on_cpu=update.on_cpu,
        label="injected-second-release",
    )
    twin.ins.append(Move(
        TensorKind.W, 0, Channel.LOCAL,
        src_task=update.tid, label="dep:injected",
    ))
    return options, ("lifetime/double-release",)


def inject_use_after_evict(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Consume a device-resident boundary after its window rotated out.

    The appended consumer claims the first task's output is still
    resident, but an unrelated group's window is granted in between --
    by then the Executor has freed the producer's boundary allocation.
    """
    producer = next(
        t for t in graph.tasks if not t.on_cpu and t.kind is TaskKind.FWD
    )
    consumer = _append_task(
        graph,
        kind=TaskKind.FWD,
        first_layer=producer.first_layer,
        last_layer=producer.last_layer,
        device=producer.device,
        microbatches=(1,),
        resident_bytes=1,
        label="injected-evicted-reuse",
    )
    consumer.ins.append(Move(
        TensorKind.Y, 1, Channel.LOCAL,
        src_task=producer.tid, label="injected-stale-resident",
    ))
    return options, ("lifetime/use-after-evict",)


def inject_use_before_fetch(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Consume bytes as device-resident that nothing ever put there."""
    task = next(t for t in graph.tasks if not t.on_cpu)
    task.ins.append(Move(
        TensorKind.X, 1, Channel.LOCAL, label="injected-phantom-resident",
    ))
    return options, ("lifetime/use-before-fetch",)


def inject_capacity_growth(
    graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Stash a checkpoint so large the host bound breaks at N = 1."""
    task = next(t for t in graph.tasks if not t.on_cpu)
    task.outs.append(Move(
        TensorKind.CKPT, 1 << 50, Channel.MSG,
        label="injected-stash-bomb",
    ))
    return options, ("capacity/host", "parametric/host-unsafe")


#: Defect name -> injector, one per seeded defect kind.
INJECTIONS: dict[str, Injector] = {
    "cycle": inject_cycle,
    "use-before-produce": inject_use_before_produce,
    "over-capacity": inject_over_capacity,
    "illegal-p2p": inject_illegal_p2p,
    "ablation": inject_ablation,
    "war-race": inject_war_race,
    "rw-race": inject_rw_race,
    "waw-race": inject_waw_race,
    "double-release": inject_double_release,
    "use-after-evict": inject_use_after_evict,
    "use-before-fetch": inject_use_before_fetch,
    "capacity-growth": inject_capacity_growth,
}


def inject(
    name: str, graph: TaskGraph, options: ScheduleOptions
) -> tuple[ScheduleOptions, tuple[str, ...]]:
    """Apply the named defect; returns (options, expected rule ids)."""
    try:
        injector = INJECTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown defect {name!r}; known: {', '.join(INJECTIONS)}"
        ) from None
    return injector(graph, options)
