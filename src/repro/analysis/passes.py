"""Pass protocol and registry.

A pass is a class with a stable ``name``, the tuple of rule ids it can
emit, and a ``run(ctx)`` generator of diagnostics.  Registering is a
decorator away::

    @register
    class MyPass(AnalysisPass):
        name = "mypass"
        rules = ("mypass/some-rule",)

        def run(self, ctx):
            yield Diagnostic("mypass/some-rule", Severity.ERROR, "...")

Pass order in the registry is the order passes run and report.
"""

from __future__ import annotations

from typing import Iterable, Optional, Type

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic


class AnalysisPass:
    """Base class for analyzer passes."""

    name: str = "?"
    rules: tuple[str, ...] = ()

    def skip_reason(self, ctx: AnalysisContext) -> Optional[str]:
        """Non-None when the pass cannot run against this context."""
        return None

    def run(self, ctx: AnalysisContext) -> Iterable[Diagnostic]:
        raise NotImplementedError


_REGISTRY: dict[str, Type[AnalysisPass]] = {}


def register(cls: Type[AnalysisPass]) -> Type[AnalysisPass]:
    """Class decorator adding a pass to the global registry."""
    if cls.name in _REGISTRY:
        raise ValueError(f"analysis pass {cls.name!r} registered twice")
    _REGISTRY[cls.name] = cls
    return cls


def registered_passes() -> dict[str, Type[AnalysisPass]]:
    """Name -> pass class, in registration (execution) order."""
    return dict(_REGISTRY)


def get_pass(name: str) -> Type[AnalysisPass]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown analysis pass {name!r}; "
            f"registered: {', '.join(_REGISTRY)}"
        ) from None
