"""Static analysis of task-graph schedules.

A pass-based verifier that proves a :class:`~repro.core.types.TaskGraph`
safe *before* the Runtime executes it: no deadlocks across the per-GPU
streams, no tensor consumed before it exists, peak residency certified
against the hardware, every move on a transport the PCIe tree actually
wires, and ablated graphs free of the constructs their switches disable.

Typical use::

    from repro.analysis import analyze

    report = analyze(graph, server=server, options=options)
    print(report.describe())
    report.raise_if_errors()

or, from a shell::

    python -m repro.cli check gpt2 --minibatch 64 --mode pp
"""

from repro.analysis.analyzer import (
    STRUCTURAL_PASSES,
    analyze,
    check,
    verify_graph,
)
from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    PassResult,
    Severity,
    Waiver,
    stream_ref,
    task_ref,
)
from repro.analysis.hb import HappensBefore, build_happens_before
from repro.analysis.inject import INJECTIONS, inject
from repro.analysis.parametric import (
    CapacityCertificate,
    capacity_certificates,
)
from repro.analysis.passes import AnalysisPass, register, registered_passes
from repro.common.errors import ScheduleAnalysisError

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisReport",
    "CapacityCertificate",
    "Diagnostic",
    "HappensBefore",
    "INJECTIONS",
    "PassResult",
    "STRUCTURAL_PASSES",
    "ScheduleAnalysisError",
    "Severity",
    "Waiver",
    "analyze",
    "build_happens_before",
    "capacity_certificates",
    "check",
    "inject",
    "register",
    "registered_passes",
    "stream_ref",
    "task_ref",
    "verify_graph",
]
