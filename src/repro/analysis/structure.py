"""Structural integrity pass: the graph is a well-formed container.

These are the invariants every other pass assumes, folded in from the old
ad-hoc ``TaskGraph.validate()``: dense tids, device bindings in range,
move source references resolvable, and tasks that actually carry work.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity, task_ref
from repro.analysis.passes import AnalysisPass, register


@register
class StructurePass(AnalysisPass):
    name = "structure"
    rules = (
        "structure/dense-tids",
        "structure/bad-device",
        "structure/dangling-src",
        "structure/self-dependency",
        "structure/no-microbatches",
    )

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        graph = ctx.graph
        n_tasks = len(graph.tasks)
        for position, task in enumerate(graph.tasks):
            if task.tid != position:
                yield Diagnostic(
                    "structure/dense-tids", Severity.ERROR,
                    f"task at position {position} has tid {task.tid}; "
                    "tids must be dense and ordered",
                    task=task.tid, device=task.device,
                    hint="emit tasks through TaskGraph.add",
                )
            if not 0 <= task.device < graph.n_devices:
                yield Diagnostic(
                    "structure/bad-device", Severity.ERROR,
                    f"task {task_ref(task.tid)} bound to device "
                    f"{task.device}, graph declares {graph.n_devices}",
                    task=task.tid,
                )
            if not task.microbatches:
                yield Diagnostic(
                    "structure/no-microbatches", Severity.ERROR,
                    f"task {task_ref(task.tid)} has an empty microbatch "
                    "group; per-microbatch moves cannot be chunked",
                    task=task.tid, device=task.device,
                )
            for _direction, move in task.moves():
                if move.src_task is None:
                    continue
                if not 0 <= move.src_task < n_tasks:
                    yield Diagnostic(
                        "structure/dangling-src", Severity.ERROR,
                        f"task {task_ref(task.tid)} move references "
                        f"missing task {move.src_task}",
                        task=task.tid, device=task.device,
                        move=move.label,
                    )
                elif move.src_task == task.tid:
                    yield Diagnostic(
                        "structure/self-dependency", Severity.ERROR,
                        f"task {task_ref(task.tid)} depends on itself",
                        task=task.tid, device=task.device,
                        move=move.label,
                    )
