"""Entry points of the static schedule analyzer.

:func:`analyze` runs every registered pass (or a chosen subset) over a
:class:`~repro.core.types.TaskGraph` and returns an
:class:`~repro.analysis.diagnostics.AnalysisReport`; :func:`check` is the
raising variant used by the runtime gates.  :func:`verify_graph` is the
server-free structural subset behind ``TaskGraph.validate()``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

# Importing the pass modules registers them; this import order is the
# execution (and report) order: invariants first, then the semantic
# passes that assume them.
from repro.analysis import structure as _structure  # noqa: F401  isort:skip
from repro.analysis import deadlock as _deadlock    # noqa: F401  isort:skip
from repro.analysis import dataflow as _dataflow    # noqa: F401  isort:skip
from repro.analysis import hb as _hb                # noqa: F401  isort:skip
from repro.analysis import lifetime as _lifetime    # noqa: F401  isort:skip
from repro.analysis import capacity as _capacity    # noqa: F401  isort:skip
from repro.analysis import parametric as _parametric  # noqa: F401  isort:skip
from repro.analysis import channels as _channels    # noqa: F401  isort:skip
from repro.analysis import ablation as _ablation    # noqa: F401  isort:skip
from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    PassResult,
    Severity,
    Waiver,
)
from repro.analysis.passes import get_pass, registered_passes
from repro.core.taskgraph import ScheduleOptions
from repro.core.types import TaskGraph
from repro.hardware.server import ServerSpec

#: Passes that need nothing beyond the graph itself; the subset
#: ``TaskGraph.validate()`` delegates to.
STRUCTURAL_PASSES: tuple[str, ...] = (
    "structure",
    "deadlock",
    "dataflow",
    "channel",
)


def analyze(
    graph: TaskGraph,
    *,
    server: Optional[ServerSpec] = None,
    options: Optional[ScheduleOptions] = None,
    host_state_bytes: Optional[int] = None,
    host_input_bytes: Optional[int] = None,
    prefetch: bool = True,
    device_memory: Optional[Sequence[int]] = None,
    passes: Optional[Sequence[str]] = None,
    suppress: Iterable[str] = (),
    waivers: Sequence[Waiver] = (),
) -> AnalysisReport:
    """Run the analyzer and return the full report (never raises).

    ``suppress`` mutes rules outright (test plumbing); ``waivers`` is
    the reviewable variant -- matched findings surface as INFO with the
    waiver's justification, and an unmatched waiver is itself an error.
    """
    ctx = AnalysisContext(
        graph,
        server=server,
        options=options,
        host_state_bytes=host_state_bytes,
        host_input_bytes=host_input_bytes,
        prefetch=prefetch,
        device_memory=list(device_memory) if device_memory is not None
        else None,
    )
    names = list(passes) if passes is not None else list(registered_passes())
    muted = frozenset(suppress)
    by_rule = {waiver.rule: waiver for waiver in waivers}
    unused = dict(by_rule)
    report = AnalysisReport(graph_mode=graph.mode, n_tasks=len(graph.tasks))
    for name in names:
        instance = get_pass(name)()
        reason = instance.skip_reason(ctx)
        if reason is not None:
            report.results.append(PassResult(name, skipped=reason))
            continue
        result = PassResult(name)
        for diagnostic in instance.run(ctx):
            if diagnostic.rule in muted:
                result.suppressed += 1
            elif diagnostic.rule in by_rule:
                unused.pop(diagnostic.rule, None)
                result.diagnostics.append(
                    by_rule[diagnostic.rule].rewrite(diagnostic)
                )
            else:
                result.diagnostics.append(diagnostic)
        report.results.append(result)
    if unused:
        report.results.append(PassResult("waiver", diagnostics=[
            Diagnostic(
                "waiver/unused", Severity.ERROR,
                f"waiver for {rule!r} matched no finding "
                f"({waiver.justification}); the excused condition is "
                "gone -- delete the waiver",
                hint="a stale waiver hides future regressions of the "
                     "waived rule",
            )
            for rule, waiver in unused.items()
        ]))
    return report


def check(graph: TaskGraph, **kwargs) -> AnalysisReport:
    """Analyze and raise :class:`ScheduleAnalysisError` on any error."""
    report = analyze(graph, **kwargs)
    report.raise_if_errors()
    return report


def verify_graph(graph: TaskGraph) -> AnalysisReport:
    """Structural certification only (no machine or schedule context)."""
    return check(graph, passes=STRUCTURAL_PASSES)
