"""Channel / topology legality.

Every move must ride a transport that physically exists:

- ``channel/bad-peer``: a P2P move naming a GPU outside the graph (or,
  when a server spec is supplied, outside the PCIe tree) -- there is no
  p2p path to pull from;
- ``channel/p2p-self``: a P2P move whose resolved source is the
  consuming GPU itself; the "transfer" would be free and the planner
  almost certainly meant ``Channel.LOCAL``;
- ``channel/cpu-p2p``: a CPU-offloaded task cannot issue peer-to-peer
  pulls; host-side consumers bounce through the upstream link;
- ``channel/local-cross-device``: a ``LOCAL`` move with bytes sourced
  from a task on a *different* GPU -- the data cannot already be
  resident locally;
- ``channel/topology-mismatch``: the graph binds more devices than the
  server's PCIe tree wires up.

When a server spec is present the pass also walks each P2P pair through
:meth:`~repro.hardware.interconnect.PcieTree`-equivalent index checks,
so every host bounce and p2p hop corresponds to real links.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity, task_ref
from repro.analysis.passes import AnalysisPass, register
from repro.core.types import Channel, Move, Task

# moves whose bytes traverse the host's upstream PCIe links
_HOST_CHANNELS = (Channel.SWAP, Channel.MSG, Channel.SHM)


@register
class ChannelPass(AnalysisPass):
    name = "channel"
    rules = (
        "channel/bad-peer",
        "channel/p2p-self",
        "channel/cpu-p2p",
        "channel/local-cross-device",
        "channel/topology-mismatch",
    )

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        graph = ctx.graph
        n_gpus = graph.n_devices
        if ctx.server is not None:
            topology = ctx.server.topology
            if topology.n_gpus < graph.n_devices:
                yield Diagnostic(
                    "channel/topology-mismatch", Severity.ERROR,
                    f"graph binds {graph.n_devices} devices but the PCIe "
                    f"tree wires {topology.n_gpus} GPUs",
                )
            n_gpus = min(n_gpus, topology.n_gpus)

        for task in graph.tasks:
            for move in task.ins:
                if move.channel is Channel.P2P:
                    yield from self._check_p2p(graph, task, move, n_gpus)
                elif move.channel is Channel.LOCAL:
                    yield from self._check_local(graph, task, move)
            for move in task.outs:
                if move.channel is Channel.P2P and move.peer is not None:
                    yield from self._check_p2p(graph, task, move, n_gpus)

    # -- rules -------------------------------------------------------------------

    def _check_p2p(
        self, graph, task: Task, move: Move, n_gpus: int
    ) -> Iterator[Diagnostic]:
        if task.on_cpu and move.nbytes > 0:
            yield Diagnostic(
                "channel/cpu-p2p", Severity.ERROR,
                f"CPU-offloaded task {task_ref(task.tid)} cannot pull "
                "over a GPU p2p path",
                task=task.tid, device=task.device, move=move.label,
                hint="route host-side consumers over SWAP/MSG",
            )
        src = self._source_device(graph, move)
        if src is None:
            # Dangling src_task with no peer: structure pass reports it.
            return
        if not 0 <= src < n_gpus:
            yield Diagnostic(
                "channel/bad-peer", Severity.ERROR,
                f"task {task_ref(task.tid)} pulls p2p from gpu{src}, "
                f"which has no p2p path in a {n_gpus}-GPU tree",
                task=task.tid, device=task.device, move=move.label,
            )
        elif src == task.device and move.nbytes > 0:
            yield Diagnostic(
                "channel/p2p-self", Severity.WARNING,
                f"task {task_ref(task.tid)} pulls p2p from its own "
                f"gpu{src}; the transfer is modeled as free",
                task=task.tid, device=task.device, move=move.label,
                hint="use Channel.LOCAL for same-GPU data",
            )

    def _check_local(
        self, graph, task: Task, move: Move
    ) -> Iterator[Diagnostic]:
        if move.nbytes == 0 or move.src_task is None:
            return
        if not 0 <= move.src_task < len(graph.tasks):
            return
        producer = graph.tasks[move.src_task]
        if producer.device != task.device:
            yield Diagnostic(
                "channel/local-cross-device", Severity.ERROR,
                f"task {task_ref(task.tid)} on gpu{task.device} marks "
                f"{move.nbytes} bytes from {task_ref(producer.tid)} on "
                f"gpu{producer.device} as LOCAL; cross-GPU data cannot "
                "already be resident",
                task=task.tid, device=task.device, move=move.label,
                hint="use Channel.P2P (or a host bounce) for cross-GPU "
                     "tensors",
            )

    @staticmethod
    def _source_device(graph, move: Move) -> Optional[int]:
        if move.peer is not None:
            return move.peer
        if move.src_task is not None and 0 <= move.src_task < len(graph.tasks):
            return graph.tasks[move.src_task].device
        return None
