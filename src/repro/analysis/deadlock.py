"""Stream-aware cycle / deadlock detection.

The Runtime is more ordered than the task graph's explicit dependencies:
each GPU issues its tasks in list order, and every per-GPU stream
(compute, swap-in, p2p-in) is a FIFO -- an operation blocks the whole
stream until its own dependencies fire.  A schedule can therefore be
acyclic in its ``src_task`` edges yet still deadlock, because a fetch
queued *earlier* on a stream waits (transitively) on a task whose own
fetch is queued *behind* it on the same stream.

This pass builds the complete "can it make progress" graph and reports
any cycle:

- two nodes per task: ``F(t)`` (all input fetches complete) and ``C(t)``
  (compute complete), with ``F(t) -> C(t)``;
- dependency edges ``C(src) -> F(t)`` for every in-move with a
  ``src_task`` (data exists at the source only once the producer ran);
- per-device compute-stream FIFO: ``C(a) -> C(b)`` for consecutive
  GPU-resident tasks (CPU-offloaded updates run off-stream);
- per-device swap-in / p2p-in stream FIFO: ``F(a) -> F(b)`` for
  consecutive tasks that enqueue a fetch on that stream.

The Executor's slot throttle only ever *adds* ordering between tasks the
FIFO edges already order, so a cycle here is a deadlock and an acyclic
graph is safe for any slot capacity.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity, stream_ref, task_ref
from repro.analysis.passes import AnalysisPass, register
from repro.core.types import Channel, Task

_Node = tuple[str, int]   # ("F" | "C", tid)


def _has_host_fetch(task: Task) -> bool:
    return any(
        move.channel in (Channel.SWAP, Channel.MSG, Channel.SHM)
        and move.nbytes > 0
        for move in task.ins
    )


def _has_p2p_fetch(task: Task) -> bool:
    return any(
        move.channel is Channel.P2P and move.nbytes > 0 for move in task.ins
    )


@register
class DeadlockPass(AnalysisPass):
    name = "deadlock"
    rules = ("deadlock/cycle",)

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        graph = ctx.graph
        n_tasks = len(graph.tasks)
        edges: dict[_Node, list[_Node]] = {}

        def add(src: _Node, dst: _Node) -> None:
            edges.setdefault(src, []).append(dst)
            edges.setdefault(dst, [])

        for task in graph.tasks:
            add(("F", task.tid), ("C", task.tid))
            for move in task.ins:
                if move.src_task is None:
                    continue
                if not 0 <= move.src_task < n_tasks:
                    continue  # structure pass reports dangling sources
                add(("C", move.src_task), ("F", task.tid))

        for device_tasks in ctx.device_order():
            prev_compute = prev_swap = prev_p2p = None
            for task in device_tasks:
                if not task.on_cpu:
                    if prev_compute is not None:
                        add(("C", prev_compute), ("C", task.tid))
                    prev_compute = task.tid
                if _has_host_fetch(task):
                    if prev_swap is not None:
                        add(("F", prev_swap), ("F", task.tid))
                    prev_swap = task.tid
                if _has_p2p_fetch(task):
                    if prev_p2p is not None:
                        add(("F", prev_p2p), ("F", task.tid))
                    prev_p2p = task.tid

        cycle = _find_cycle(edges)
        if cycle is None:
            return
        yield self._cycle_diagnostic(ctx, cycle)

    # -- reporting ---------------------------------------------------------------

    def _cycle_diagnostic(
        self, ctx: AnalysisContext, cycle: list[_Node]
    ) -> Diagnostic:
        graph = ctx.graph
        tids: list[int] = []
        streams: list[str] = []
        for phase, tid in cycle:
            if tid not in tids:
                tids.append(tid)
            task = graph.tasks[tid]
            if phase == "C":
                name = stream_ref(task.device, "compute")
            elif _has_p2p_fetch(task) and not _has_host_fetch(task):
                name = stream_ref(task.device, "p2p_in")
            else:
                name = stream_ref(task.device, "swap_in")
            if name not in streams:
                streams.append(name)
        chain = " -> ".join(task_ref(t) for t in tids + tids[:1])
        return Diagnostic(
            "deadlock/cycle", Severity.ERROR,
            f"tasks {chain} can never all make progress "
            f"(cycle across streams {', '.join(streams)})",
            task=tids[0], device=graph.tasks[tids[0]].device,
            hint="reorder the per-device task lists or break the "
                 "dependency so every fetch waits only on work queued "
                 "ahead of it",
        )


def _find_cycle(edges: dict[_Node, list[_Node]]) -> list[_Node] | None:
    """First cycle in ``edges`` as the list of nodes on it, else None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    for root in edges:
        if color[root] != WHITE:
            continue
        path: list[_Node] = []
        # Stack of (node, iterator over successors).
        stack: list[tuple[_Node, Iterator[_Node]]] = [
            (root, iter(edges[root]))
        ]
        color[root] = GRAY
        path.append(root)
        while stack:
            node, successors = stack[-1]
            advanced = False
            for nxt in successors:
                if color[nxt] == GRAY:
                    return path[path.index(nxt):]
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    path.append(nxt)
                    stack.append((nxt, iter(edges[nxt])))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return None
