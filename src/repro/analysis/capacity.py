"""Memory-capacity certification.

Bounds the peak working set the Runtime can reach along *any*
linearization consistent with the dependencies, and compares it against
the hardware:

- per GPU: the Executor grants at most ``fetch_slots`` concurrent task
  windows per device (two with prefetch double-buffering, one without)
  and holds each task's planned ``resident_bytes`` from slot grant to
  completion.  The peak is therefore bounded by the largest sum over any
  ``fetch_slots`` consecutive tasks in device order -- independent of
  event timing;
- host: pinned model state plus every live checkpoint stash must fit CPU
  memory (the bound that stops ZeRO-Infinity at 40B parameters in the
  paper's Figure 15).

Requires a server spec; the host bound additionally needs the caller to
say how much host state the run pins.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity, task_ref
from repro.analysis.passes import AnalysisPass, register
from repro.core.types import TensorKind


@register
class CapacityPass(AnalysisPass):
    name = "capacity"
    rules = ("capacity/gpu", "capacity/host")

    def skip_reason(self, ctx: AnalysisContext) -> Optional[str]:
        if ctx.server is None:
            return "no server spec"
        return None

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        assert ctx.server is not None
        window = ctx.fetch_slots
        for device, tasks in enumerate(ctx.device_order()):
            capacity = ctx.device_capacity(device)
            resident = [
                0 if task.on_cpu else task.resident_bytes for task in tasks
            ]
            peak, at = 0, 0
            for i in range(len(tasks)):
                bound = sum(resident[i:i + window])
                if bound > peak:
                    peak, at = bound, i
            if peak > capacity:
                window_tasks = tasks[at:at + window]
                names = ", ".join(
                    f"{task_ref(t.tid)} ({t.label or t.kind.value})"
                    for t in window_tasks
                )
                yield Diagnostic(
                    "capacity/gpu", Severity.ERROR,
                    f"gpu{device} peak resident bound {peak} bytes "
                    f"exceeds capacity {capacity} bytes "
                    f"(worst window: {names})",
                    task=window_tasks[0].tid, device=device,
                    hint="repack with a smaller capacity fraction or a "
                         "smaller microbatch",
                )

        if ctx.host_state_bytes is not None:
            stash = sum(
                move.nbytes
                for task in ctx.graph.tasks
                for direction, move in task.moves()
                if direction == "out" and move.tensor is TensorKind.CKPT
            )
            peak = ctx.host_state_bytes + stash
            host_capacity = ctx.server.host.memory_bytes
            if peak > host_capacity:
                yield Diagnostic(
                    "capacity/host", Severity.ERROR,
                    f"host working set {peak / 2**30:.1f} GiB (state "
                    f"{ctx.host_state_bytes / 2**30:.1f} GiB + stash "
                    f"{stash / 2**30:.1f} GiB) exceeds CPU memory "
                    f"{host_capacity / 2**30:.1f} GiB",
                    hint="reduce the checkpoint stash (more recompute) "
                         "or the minibatch",
                )
