"""Ablation-consistency lint (guards the Figure 13 experiments).

A graph built with an optimization switched *off* must not contain the
constructs that switch is supposed to eliminate -- otherwise the ablation
measures a graph that silently kept the optimization:

- ``grouping`` off: every task runs a single microbatch;
- ``jit`` off: no fused (jit-compute) tasks, and every weight update is
  scheduled after the last backward task;
- ``p2p`` off: no move rides ``Channel.P2P``;
- ``offload_optimizer``: on means updates run on the CPU and optimizer
  state never crosses PCIe; off means updates run on the GPU.

Requires the :class:`~repro.core.taskgraph.ScheduleOptions` the graph
was (supposedly) built with.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity, task_ref
from repro.analysis.passes import AnalysisPass, register
from repro.core.types import Channel, TaskKind, TensorKind


@register
class AblationPass(AnalysisPass):
    name = "ablation"
    rules = (
        "ablation/grouping",
        "ablation/jit",
        "ablation/p2p",
        "ablation/offload",
    )

    def skip_reason(self, ctx: AnalysisContext) -> Optional[str]:
        if ctx.options is None:
            return "no schedule options"
        return None

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        assert ctx.options is not None
        graph, opts = ctx.graph, ctx.options

        if not opts.grouping:
            for task in graph.tasks:
                if task.kind is not TaskKind.UPD and len(task.microbatches) > 1:
                    yield Diagnostic(
                        "ablation/grouping", Severity.ERROR,
                        f"grouping is off but task {task_ref(task.tid)} "
                        f"groups {len(task.microbatches)} microbatches",
                        task=task.tid, device=task.device,
                    )

        if not opts.jit:
            for task in graph.tasks:
                if task.fused:
                    yield Diagnostic(
                        "ablation/jit", Severity.ERROR,
                        f"jit is off but task {task_ref(task.tid)} is a "
                        "fused jit-compute task",
                        task=task.tid, device=task.device,
                    )
            bwd_tids = [
                t.tid for t in graph.tasks if t.kind is TaskKind.BWD
            ]
            upd_tids = [
                t.tid for t in graph.tasks if t.kind is TaskKind.UPD
            ]
            if bwd_tids and upd_tids and min(upd_tids) < max(bwd_tids):
                tid = min(upd_tids)
                yield Diagnostic(
                    "ablation/jit", Severity.ERROR,
                    f"jit is off but update {task_ref(tid)} is scheduled "
                    "before the last backward task; updates must run at "
                    "the end of the iteration",
                    task=tid, device=graph.tasks[tid].device,
                )

        if not opts.p2p:
            for task in graph.tasks:
                for _direction, move in task.moves():
                    if move.channel is Channel.P2P:
                        yield Diagnostic(
                            "ablation/p2p", Severity.ERROR,
                            f"p2p is off but task {task_ref(task.tid)} "
                            "moves a tensor over Channel.P2P",
                            task=task.tid, device=task.device,
                            move=move.label,
                        )

        for task in graph.of_kind(TaskKind.UPD):
            if opts.offload_optimizer and not task.on_cpu:
                yield Diagnostic(
                    "ablation/offload", Severity.ERROR,
                    f"optimizer offload is on but update "
                    f"{task_ref(task.tid)} runs on gpu{task.device}",
                    task=task.tid, device=task.device,
                )
            elif not opts.offload_optimizer and task.on_cpu:
                yield Diagnostic(
                    "ablation/offload", Severity.ERROR,
                    f"optimizer offload is off but update "
                    f"{task_ref(task.tid)} runs on the CPU",
                    task=task.tid, device=task.device,
                )
        if opts.offload_optimizer:
            for task in graph.tasks:
                for _direction, move in task.moves():
                    if move.tensor is TensorKind.K and move.nbytes > 0:
                        yield Diagnostic(
                            "ablation/offload", Severity.ERROR,
                            f"optimizer offload is on but task "
                            f"{task_ref(task.tid)} moves optimizer state "
                            "across PCIe",
                            task=task.tid, device=task.device,
                            move=move.label,
                        )
