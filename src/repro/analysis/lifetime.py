"""Tensor-lifetime safety, by abstract interpretation over a state lattice.

Each tensor a schedule touches is, at any point of the iteration, in one
of four abstract states: **gpu-resident**, **host**, **in-flight**, or
**freed**.  Moves are the transitions -- a host-channel fetch takes
``host -> in-flight -> gpu-resident``, a flush the reverse, and the
Runtime's sliding residency window *frees* device-resident boundary data
once it rotates past the producing task's slot.  This pass walks every
device's issue order through that lattice and reports consumptions of
bytes that can only be in the wrong state:

- ``lifetime/use-before-fetch``: a ``LOCAL`` in-move with no producing
  task.  LOCAL promises the bytes are already device-resident, but
  nothing ever fetched or computed them -- the abstract state at the
  consumer is *freed* (never allocated) on every path;
- ``lifetime/use-after-evict``: a ``LOCAL`` in-move whose same-device
  producer is separated from the consumer by a task of a *third* group.
  The Executor holds at most ``fetch_slots`` task windows resident, and
  boundary tensors survive only from one group's slot to the adjacent
  consumer's; once an unrelated group's window is granted in between,
  the producer's boundary allocation has been rotated out -- the state
  at the consumer is *freed* (evicted) on the Runtime's path;
- ``lifetime/double-release``: two UPD tasks own the same ``(device,
  layer)`` slice of model state.  Update ownership is release-once: the
  second releaser frees parameter/optimizer buffers the first already
  returned, corrupting the pool.

Cross-device LOCAL moves are the channel pass's finding
(``channel/local-cross-device``), and a producer queued *behind* its
consumer is the deadlock pass's; this pass stays silent on both rather
than double-reporting.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity, task_ref
from repro.analysis.passes import AnalysisPass, register
from repro.core.types import Channel, Task, TaskKind

#: Tasks of one group share a residency window; boundary tensors live
#: exactly as long as adjacent groups' windows overlap.
_Group = tuple[TaskKind, int, int, bool]


def _group(task: Task) -> _Group:
    return (task.kind, task.first_layer, task.last_layer, task.fused)


@register
class LifetimePass(AnalysisPass):
    name = "lifetime"
    rules = (
        "lifetime/use-before-fetch",
        "lifetime/use-after-evict",
        "lifetime/double-release",
    )

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        graph = ctx.graph
        n_tasks = len(graph.tasks)
        device_gpu_order: list[list[Task]] = [
            [t for t in tasks if not t.on_cpu]
            for tasks in ctx.device_order()
        ]
        position = {
            task.tid: i
            for tasks in device_gpu_order
            for i, task in enumerate(tasks)
        }

        for task in graph.tasks:
            for move in task.ins:
                if move.channel is not Channel.LOCAL or move.nbytes == 0:
                    continue
                if move.src_task is None:
                    yield Diagnostic(
                        "lifetime/use-before-fetch", Severity.ERROR,
                        f"{task_ref(task.tid)} consumes {move.nbytes} "
                        f"device-resident bytes with no producing task; "
                        f"the buffer is never fetched or computed on "
                        f"gpu{task.device}",
                        task=task.tid, device=task.device, move=move.label,
                        hint="name the producer via src_task, or fetch "
                             "the bytes over SWAP/P2P",
                    )
                    continue
                if not 0 <= move.src_task < n_tasks:
                    continue  # structure pass reports dangling sources
                producer = graph.tasks[move.src_task]
                if producer.device != task.device or producer.on_cpu:
                    continue  # channel/local-cross-device territory
                evicted = self._evicting_task(
                    device_gpu_order[task.device], position,
                    producer, task,
                )
                if evicted is not None:
                    yield Diagnostic(
                        "lifetime/use-after-evict", Severity.ERROR,
                        f"{task_ref(task.tid)} reuses {move.nbytes} "
                        f"resident bytes from {task_ref(producer.tid)}, "
                        f"but {task_ref(evicted.tid)} "
                        f"({evicted.label or evicted.kind.value}) runs in "
                        f"between on gpu{task.device}: the residency "
                        f"window has rotated past the producer and the "
                        f"boundary buffer is freed",
                        task=task.tid, device=task.device, move=move.label,
                        hint="re-fetch over SWAP, or reorder so producer "
                             "and consumer windows are adjacent",
                    )

        yield from self._double_release(graph)

    @staticmethod
    def _evicting_task(
        gpu_tasks: list[Task],
        position: dict[int, int],
        producer: Task,
        consumer: Task,
    ) -> Optional[Task]:
        """First third-group task between producer and consumer, if any."""
        start = position.get(producer.tid)
        end = position.get(consumer.tid)
        if start is None or end is None or start >= end:
            return None  # mis-queued producers are the deadlock pass's
        keep = {_group(producer), _group(consumer)}
        for between in gpu_tasks[start + 1:end]:
            if _group(between) not in keep:
                return between
        return None

    @staticmethod
    def _double_release(graph) -> Iterator[Diagnostic]:
        # (device, layer) -> tid of the update that released it first.
        owner: dict[tuple[int, int], int] = {}
        for task in graph.tasks:
            if task.kind is not TaskKind.UPD:
                continue
            clash: Optional[int] = None
            for layer in task.layers:
                key = (task.device, layer)
                if key in owner:
                    clash = owner[key] if clash is None else clash
                else:
                    owner[key] = task.tid
            if clash is not None:
                yield Diagnostic(
                    "lifetime/double-release", Severity.ERROR,
                    f"{task_ref(task.tid)} re-releases update ownership "
                    f"of layers {task.first_layer}..{task.last_layer} on "
                    f"gpu{task.device} already released by "
                    f"{task_ref(clash)}; the second release frees "
                    f"already-freed parameter/optimizer buffers",
                    task=task.tid, device=task.device,
                    hint="give each (device, layer) slice exactly one "
                         "update task per iteration",
                )
