"""Static happens-before relation and shared-state race detection.

The Runtime orders work through two mechanisms the task graph does not
spell out: explicit ``src_task`` dependencies (a fetch waits for its
producer's completion or host flush) and per-GPU stream FIFOs (compute,
swap-in, p2p-in, swap-out are each serial queues).  This module derives
the *complete* static happens-before relation from both, then checks
every pair of accesses to shared model state against it:

- three nodes per task: ``F(t)`` (inputs fetched), ``C(t)`` (compute
  complete), ``O(t)`` (outputs flushed to host), chained
  ``F -> C -> O``;
- dependency edges: an in-move with a ``src_task`` waits on ``O(src)``
  when the bytes bounce through the host (the Runtime waits on the
  producer's flush) and on ``C(src)`` for device-resident or p2p data;
- per-device stream FIFO edges between consecutive enqueuers of the
  same stream, mirroring :mod:`repro.analysis.deadlock`'s model.

Accesses to *shared model state* -- weight and optimizer-state tensors,
keyed by ``(family, layer span)`` -- race when two tasks touch an
overlapping span, at least one writes, and neither access happens
before the other:

- ``hb/waw-race``: two unordered writes (e.g. duplicate weight updates
  racing on the same master copy);
- ``hb/war-race``: a write unordered with an *earlier-queued* read --
  the update can clobber weights a compute task is still fetching;
- ``hb/rw-race``: a read unordered with an earlier-queued write -- the
  consumer may observe a half-applied update.

Writes are the explicit W/K out-moves of GPU update tasks plus the
*implicit* in-place mutation a CPU-offloaded UPD performs on pinned host
state (it emits no out-moves; the mutation happens at ``C(t)``).
Per-replica gradient buffers (``DW``) are deliberately not race-checked:
data-parallel replicas each own a private buffer, so cross-device
gradient writes are disjoint by construction.

A cyclic happens-before graph is reported by the deadlock pass; race
detection declines to guess about orderings inside a wedged schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.analysis.context import AnalysisContext
from repro.analysis.dataflow import _FAMILY
from repro.analysis.diagnostics import Diagnostic, Severity, task_ref
from repro.analysis.passes import AnalysisPass, register
from repro.core.types import Channel, Task, TaskGraph, TaskKind

#: Node kinds: F = inputs fetched, C = compute complete, O = outs flushed.
Node = tuple[str, int]

#: Tensor families treated as shared mutable model state.
_STATE_FAMILIES = ("weights", "optimizer-state")


def _has_host_fetch(task: Task) -> bool:
    return any(m.channel.via_host and m.nbytes > 0 for m in task.ins)


def _has_p2p_fetch(task: Task) -> bool:
    return any(m.channel is Channel.P2P and m.nbytes > 0 for m in task.ins)


def _has_host_flush(task: Task) -> bool:
    return any(m.channel.via_host and m.nbytes > 0 for m in task.outs)


@dataclass
class HappensBefore:
    """The transitive happens-before relation over task F/C/O nodes."""

    index: dict[Node, int]
    #: per node, a bitmask of the node indices strictly reachable from it;
    #: empty when the graph is cyclic.
    reach: list[int]
    cyclic: bool

    def happens_before(self, a: Node, b: Node) -> bool:
        """True when ``a`` is ordered strictly before ``b``."""
        if self.cyclic:
            return False
        return bool((self.reach[self.index[a]] >> self.index[b]) & 1)

    def ordered(self, a: Node, b: Node) -> bool:
        """True when the two nodes are ordered either way."""
        return self.happens_before(a, b) or self.happens_before(b, a)


def build_happens_before(ctx: AnalysisContext) -> HappensBefore:
    """Derive the full static happens-before relation for ``ctx.graph``.

    Combines explicit ``src_task`` dependencies with the per-device
    stream FIFO orderings the Runtime imposes.  The Executor's slot
    throttle only adds ordering between tasks the FIFOs already order,
    so this relation is exact for may-happen-in-parallel queries.
    """
    graph = ctx.graph
    n_tasks = len(graph.tasks)
    index: dict[Node, int] = {}
    for task in graph.tasks:
        for phase in ("F", "C", "O"):
            index[(phase, task.tid)] = len(index)

    succ: list[list[int]] = [[] for _ in range(len(index))]
    indeg = [0] * len(index)

    def add(src: Node, dst: Node) -> None:
        succ[index[src]].append(index[dst])
        indeg[index[dst]] += 1

    for task in graph.tasks:
        add(("F", task.tid), ("C", task.tid))
        add(("C", task.tid), ("O", task.tid))
        for move in task.ins:
            if move.src_task is None or not 0 <= move.src_task < n_tasks:
                continue  # structure pass reports dangling sources
            phase = "O" if move.channel.via_host else "C"
            add((phase, move.src_task), ("F", task.tid))

    for device_tasks in ctx.device_order():
        prev: dict[str, Optional[int]] = {
            "compute": None, "swap_in": None, "p2p_in": None,
            "swap_out": None,
        }

        def chain(stream: str, phase: str, tid: int) -> None:
            if prev[stream] is not None:
                add((phase, prev[stream]), (phase, tid))
            prev[stream] = tid

        for task in device_tasks:
            if not task.on_cpu:
                chain("compute", "C", task.tid)
            if _has_host_fetch(task):
                chain("swap_in", "F", task.tid)
            if _has_p2p_fetch(task):
                chain("p2p_in", "F", task.tid)
            if _has_host_flush(task):
                chain("swap_out", "O", task.tid)

    # Kahn topological order; a leftover node means a cycle (the
    # deadlock pass names it -- reachability is meaningless then).
    order: list[int] = [i for i, d in enumerate(indeg) if d == 0]
    head = 0
    while head < len(order):
        node = order[head]
        head += 1
        for nxt in succ[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                order.append(nxt)
    if len(order) < len(index):
        return HappensBefore(index=index, reach=[], cyclic=True)

    reach = [0] * len(index)
    for node in reversed(order):
        mask = 0
        for nxt in succ[node]:
            mask |= reach[nxt] | (1 << nxt)
        reach[node] = mask
    return HappensBefore(index=index, reach=reach, cyclic=False)


@dataclass(frozen=True)
class _Access:
    task: Task
    node: Node          # where in the task's lifecycle the access lands
    family: str
    first_layer: int
    last_layer: int
    write: bool
    what: str           # human-readable access description

    def overlaps(self, other: "_Access") -> bool:
        return (self.first_layer <= other.last_layer
                and other.first_layer <= self.last_layer)


def _state_accesses(graph: TaskGraph) -> list["_Access"]:
    """Every read/write of shared model state, with its lifecycle node."""
    accesses: list[_Access] = []
    for task in graph.tasks:
        for move in task.ins:
            family = _FAMILY[move.tensor]
            if move.nbytes > 0 and family in _STATE_FAMILIES:
                accesses.append(_Access(
                    task, ("F", task.tid), family,
                    task.first_layer, task.last_layer, write=False,
                    what=f"reads {family} via {move.label or move.tensor.name}",
                ))
        for move in task.outs:
            family = _FAMILY[move.tensor]
            if move.nbytes > 0 and family in _STATE_FAMILIES:
                accesses.append(_Access(
                    task, ("O", task.tid), family,
                    task.first_layer, task.last_layer, write=True,
                    what=f"writes {family} via "
                         f"{move.label or move.tensor.name}",
                ))
        if task.kind is TaskKind.UPD and task.on_cpu:
            # A CPU-offloaded update mutates pinned host state in place;
            # there is no out-move to anchor the write to.
            for family in _STATE_FAMILIES:
                accesses.append(_Access(
                    task, ("C", task.tid), family,
                    task.first_layer, task.last_layer, write=True,
                    what=f"updates host {family} in place",
                ))
    return accesses


@register
class RacePass(AnalysisPass):
    name = "hb"
    rules = ("hb/waw-race", "hb/war-race", "hb/rw-race")

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        hb = build_happens_before(ctx)
        if hb.cyclic:
            return  # the deadlock pass owns cycle reporting
        accesses = _state_accesses(ctx.graph)
        writes = [a for a in accesses if a.write]
        for write in writes:
            for other in accesses:
                if other.task.tid == write.task.tid:
                    continue
                if other.write and other.task.tid < write.task.tid:
                    continue  # write/write pairs reported once
                if other.family != write.family:
                    continue
                if not write.overlaps(other):
                    continue
                if hb.ordered(write.node, other.node):
                    continue
                yield self._race(write, other)

    @staticmethod
    def _race(write: _Access, other: _Access) -> Diagnostic:
        if other.write:
            rule, hazard = "hb/waw-race", "two unordered writes"
        elif other.task.tid < write.task.tid:
            rule, hazard = "hb/war-race", "a write unordered with an " \
                                          "earlier-queued read"
        else:
            rule, hazard = "hb/rw-race", "a read unordered with an " \
                                         "earlier-queued write"
        first, second = sorted(
            (write, other), key=lambda a: a.task.tid
        )
        span = (f"layers {first.first_layer}..{first.last_layer}"
                if first.first_layer != first.last_layer
                else f"layer {first.first_layer}")
        return Diagnostic(
            rule, Severity.ERROR,
            f"{task_ref(first.task.tid)} {first.what} while "
            f"{task_ref(second.task.tid)} {second.what} "
            f"(overlapping {span}; {hazard} on shared "
            f"{first.family})",
            task=second.task.tid, device=second.task.device,
            hint="add a dependency move (or queue both on one stream) so "
                 "every reader/writer pair of shared state is ordered",
        )
