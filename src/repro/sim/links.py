"""Bandwidth-arbitrated interconnect links.

A :class:`Link` models one *direction* of a PCIe (or NVLink) hop: transfers
over a link serialize FIFO at the link's bandwidth.  A transfer over a
*path* of links holds every hop simultaneously for ``bytes / min(bw)``
seconds -- the cut-through model.  Links are acquired in a canonical order
(by id) so concurrent path transfers can never deadlock.

This is the mechanism that exposes the paper's PCIe oversubscription
bottleneck (Figure 2a): several GPUs swapping to host all contend on the
shared upstream link, so aggregate swap time grows with the number of
swapping GPUs even though each GPU has a dedicated x16 leaf link.

Fault hooks
-----------

Two fault-injection surfaces live here so the chaos subsystem
(:mod:`repro.faults`) never has to reach into transfer internals:

- ``Link.degradation`` -- an optional function of virtual time returning
  a bandwidth multiplier in ``(0, 1]``; models link flapping, congestion
  episodes, and host-memory-pressure slowdowns.  Sampled when a transfer
  acquires the path, like real cut-through routing locks in a rate.
- ``transfer(..., fault=...)`` -- aborts the transfer partway: the links
  are held for ``fault.fraction`` of the nominal duration (the wasted
  bus time is real contention other transfers observe), *no* bytes are
  accounted as moved, and ``fault.error`` is raised for the caller's
  retry/fallback policy to handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Iterable, Optional, Sequence

from repro.common.errors import SimulationError, TransferFaultError
from repro.sim.engine import Resource, Simulator


class Link:
    """One direction of an interconnect hop with a fixed nominal bandwidth.

    ``latency`` is a fixed per-hop propagation delay added to every hold
    (0 for PCIe hops, where propagation is negligible against transfer
    time; network hops set it).  A zero latency adds ``0.0`` to the
    duration, which is bit-identical to the pre-latency arithmetic.
    """

    _next_id = 0

    def __init__(self, sim: Simulator, name: str, bandwidth: float,
                 latency: float = 0.0):
        if bandwidth <= 0:
            raise SimulationError(f"link {name!r} bandwidth must be positive")
        if latency < 0:
            raise SimulationError(f"link {name!r} latency cannot be negative")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)  # nominal bytes per second
        self.latency = float(latency)      # seconds per hold
        self.bytes_moved = 0
        self.busy_time = 0.0
        #: Optional time-varying bandwidth multiplier (fault injection).
        self.degradation: Optional[Callable[[float], float]] = None
        self._resource = Resource(sim, capacity=1, name=name)
        self.link_id = Link._next_id
        Link._next_id += 1

    def effective_bandwidth(self, now: float) -> float:
        """Bandwidth after any injected degradation, at virtual time ``now``."""
        if self.degradation is None:
            return self.bandwidth
        factor = self.degradation(now)
        if not 0.0 < factor <= 1.0:
            raise SimulationError(
                f"link {self.name!r} degradation factor {factor} outside (0, 1]"
            )
        return self.bandwidth * factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, {self.bandwidth / 1e9:.1f} GB/s)"


class NetworkLink(Link):
    """A cross-server network hop: bandwidth plus propagation latency.

    Semantically identical to :class:`Link` (same arbitration, same
    degradation/fault hooks, same byte accounting), but kept as its own
    type so cluster code and invariant checks can tell NICs and switch
    fabrics apart from PCIe hops.
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkLink({self.name}, {self.bandwidth / 1e9:.1f} GB/s, "
            f"{self.latency * 1e6:.0f}us)"
        )


@dataclass(frozen=True)
class TransferFault:
    """Instruction to abort a transfer partway through.

    ``fraction`` is how far through the nominal hold time the abort
    strikes; ``error`` is the typed exception raised to the caller.
    """

    error: TransferFaultError
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise SimulationError(
                f"transfer fault fraction {self.fraction} outside [0, 1]"
            )


def transfer(
    sim: Simulator,
    path: Sequence[Link],
    nbytes: int,
    fault: Optional[TransferFault] = None,
    label: str = "",
    device: int = -1,
    lane: str = "",
) -> Generator:
    """Generator op that moves ``nbytes`` over ``path``.

    Acquires every link (in canonical id order, preventing deadlock), holds
    all of them for ``nbytes / min(effective bandwidth)`` seconds, then
    releases.  Yields from inside, so it is submitted to a :class:`Stream`
    or run as a process directly.

    With ``fault`` set, the links are held for ``fault.fraction`` of the
    duration, released, and ``fault.error`` is raised; the aborted bytes
    are **not** counted in ``bytes_moved`` (goodput accounting) though the
    wasted hold time is counted in ``busy_time`` (it was real contention).

    ``label`` / ``device`` / ``lane`` attribute the hold on the execution
    trace when a recorder is attached (``sim.trace``): one ``xfer`` span
    per call, from path acquisition to release, carrying the hop names,
    the queueing delay (``wait``), and the bytes that actually moved
    (0 for a faulted hold -- the bus time was real, the goodput was not).
    """
    if nbytes < 0:
        raise SimulationError(f"negative transfer size: {nbytes}")
    if not path:
        if fault is not None:
            raise fault.error
        if nbytes > 0 and sim.trace is not None:
            # Zero-hop route (e.g. co-located endpoints): instantaneous,
            # but the bytes still moved -- record them so trace totals
            # reconcile with the byte counters.
            sim.trace.span("xfer", label, sim.now, sim.now, device=device,
                           lane=lane, nbytes=nbytes, links="", wait=0.0)
        return
    if nbytes == 0:
        if fault is not None:
            raise fault.error
        return
    trace = sim.trace
    requested = sim.now
    ordered = sorted(path, key=lambda link: link.link_id)
    for link in ordered:
        yield link._resource.request()
    acquired = sim.now
    duration = sum(link.latency for link in path) + nbytes / min(
        link.effective_bandwidth(sim.now) for link in path
    )
    if fault is not None:
        held = duration * fault.fraction
        if held > 0:
            yield sim.timeout(held)
        for link in ordered:
            link.busy_time += held
            link._resource.release()
        if trace is not None:
            trace.span(
                "xfer", label, acquired, sim.now,
                device=device, lane=lane, nbytes=0,
                links="+".join(link.name for link in ordered),
                wait=acquired - requested, faulted=1,
            )
        raise fault.error
    yield sim.timeout(duration)
    for link in ordered:
        link.bytes_moved += nbytes
        link.busy_time += duration
        link._resource.release()
    if trace is not None:
        trace.span(
            "xfer", label, acquired, sim.now,
            device=device, lane=lane, nbytes=nbytes,
            links="+".join(link.name for link in ordered),
            wait=acquired - requested,
        )


def path_time(path: Iterable[Link], nbytes: int) -> float:
    """Uncontended transfer time for ``nbytes`` over ``path`` (estimation).

    Uses nominal bandwidths: the Scheduler's estimator plans for the
    healthy machine; injected degradation is the runtime's problem.
    Deterministically zero-cost for an empty path or a non-positive byte
    count (a zero-hop route or an empty tensor costs nothing -- mirroring
    :func:`transfer`'s short-circuits), never a division error.
    """
    hops = list(path)
    bandwidths = [link.bandwidth for link in hops]
    if not bandwidths or nbytes <= 0:
        return 0.0
    return sum(link.latency for link in hops) + nbytes / min(bandwidths)
