"""Bandwidth-arbitrated interconnect links.

A :class:`Link` models one *direction* of a PCIe (or NVLink) hop: transfers
over a link serialize FIFO at the link's bandwidth.  A transfer over a
*path* of links holds every hop simultaneously for ``bytes / min(bw)``
seconds -- the cut-through model.  Links are acquired in a canonical order
(by id) so concurrent path transfers can never deadlock.

This is the mechanism that exposes the paper's PCIe oversubscription
bottleneck (Figure 2a): several GPUs swapping to host all contend on the
shared upstream link, so aggregate swap time grows with the number of
swapping GPUs even though each GPU has a dedicated x16 leaf link.
"""

from __future__ import annotations

from typing import Generator, Iterable, Sequence

from repro.common.errors import SimulationError
from repro.sim.engine import Resource, SimEvent, Simulator


class Link:
    """One direction of an interconnect hop with a fixed bandwidth."""

    _next_id = 0

    def __init__(self, sim: Simulator, name: str, bandwidth: float):
        if bandwidth <= 0:
            raise SimulationError(f"link {name!r} bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)  # bytes per second
        self.bytes_moved = 0
        self.busy_time = 0.0
        self._resource = Resource(sim, capacity=1, name=name)
        self.link_id = Link._next_id
        Link._next_id += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, {self.bandwidth / 1e9:.1f} GB/s)"


def transfer(sim: Simulator, path: Sequence[Link], nbytes: int) -> Generator:
    """Generator op that moves ``nbytes`` over ``path``.

    Acquires every link (in canonical id order, preventing deadlock), holds
    all of them for ``nbytes / min(bandwidth)`` seconds, then releases.
    Yields from inside, so it is submitted to a :class:`Stream` or run as a
    process directly.
    """
    if nbytes < 0:
        raise SimulationError(f"negative transfer size: {nbytes}")
    if not path:
        return
    if nbytes == 0:
        return
    ordered = sorted(path, key=lambda link: link.link_id)
    for link in ordered:
        yield link._resource.request()
    duration = nbytes / min(link.bandwidth for link in path)
    yield sim.timeout(duration)
    for link in ordered:
        link.bytes_moved += nbytes
        link.busy_time += duration
        link._resource.release()


def path_time(path: Iterable[Link], nbytes: int) -> float:
    """Uncontended transfer time for ``nbytes`` over ``path`` (estimation)."""
    bandwidths = [link.bandwidth for link in path]
    if not bandwidths or nbytes <= 0:
        return 0.0
    return nbytes / min(bandwidths)
