"""Discrete-event simulation substrate.

This package is the stand-in for the CUDA runtime the paper builds on:

- :class:`~repro.sim.engine.Simulator` -- the event loop; processes are
  Python generators that yield :class:`~repro.sim.engine.SimEvent` objects.
- :class:`~repro.sim.stream.Stream` -- a serial in-order work queue, the
  analog of a CUDA stream; :class:`~repro.sim.stream.StreamEvent` mirrors
  ``cudaEvent`` for cross-stream synchronization.
- :class:`~repro.sim.links.Link` -- a bandwidth-arbitrated interconnect
  link; :func:`~repro.sim.links.transfer` moves bytes over a path of links.
"""

from repro.sim.engine import Simulator, SimEvent, Timeout, Process, AllOf, Resource
from repro.sim.stream import Stream
from repro.sim.links import Link, transfer

__all__ = [
    "Simulator",
    "SimEvent",
    "Timeout",
    "Process",
    "AllOf",
    "Resource",
    "Stream",
    "Link",
    "transfer",
]
