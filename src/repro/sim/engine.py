"""A small process-based discrete-event simulation kernel.

The kernel follows the SimPy model: a *process* is a Python generator that
yields :class:`SimEvent` objects; yielding suspends the process until the
event fires.  The :class:`Simulator` owns virtual time and a binary heap of
scheduled callbacks.

Only the features the Harmony runtime needs are implemented -- timeouts,
composable events, FIFO resources -- which keeps the kernel small enough to
reason about and fully unit-tested.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import SimulationError

ProcessBody = Generator["SimEvent", Any, Any]


class SimEvent:
    """A one-shot event that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` fires it, resuming
    every waiting process with ``value``.  Waiting on an already-fired
    event resumes the waiter immediately (on the next simulator step).

    ``name`` identifies the event in error messages; the runtime names
    its task events with the same ``t<tid>`` / ``gpu<d>.<stream>``
    scheme the static analyzer's diagnostics use, so a runtime failure
    and a pre-run diagnostic point at the same schedule entity.
    """

    __slots__ = ("sim", "name", "_fired", "_value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._fired = False
        self._value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def _label(self) -> str:
        return f"event {self.name!r}" if self.name else "event"

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(
                f"{self._label()} value read before the event fired"
            )
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        """Fire the event, waking all waiters at the current sim time."""
        if self._fired:
            raise SimulationError(f"{self._label()} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.sim.schedule(0.0, callback, value)
        return self

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the event fires (immediately if
        it already has)."""
        if self._fired:
            self.sim.schedule(0.0, callback, self._value)
        else:
            self._waiters.append(callback)


class Timeout(SimEvent):
    """An event that fires ``delay`` seconds after creation."""

    def __init__(self, sim: "Simulator", delay: float):
        super().__init__(sim)
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        sim.schedule(delay, self.succeed)


class AllOf(SimEvent):
    """Fires once every event in ``events`` has fired.

    The value is the list of constituent event values, in input order.
    An empty input fires immediately.
    """

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent],
                 name: str = ""):
        super().__init__(sim, name=name)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            sim.schedule(0.0, self.succeed, [])
            return
        for event in self._events:
            event.add_callback(self._one_done)

    def _one_done(self, _value: Any) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([event.value for event in self._events])


class Process(SimEvent):
    """Runs a generator as a simulation process.

    The process event itself fires when the generator returns; its value is
    the generator's return value, so processes compose (a process may yield
    another process to join it).
    """

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str = "proc"):
        super().__init__(sim, name=name)
        self._body = body
        sim.schedule(0.0, self._step, None)

    def _step(self, value: Any) -> None:
        try:
            target = self._body.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, SimEvent):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield SimEvent instances"
            )
        target.add_callback(self._step)


class Resource:
    """A counted FIFO resource (like a semaphore with fair queuing).

    ``request()`` returns an event that fires when a slot is granted;
    the holder must call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "res"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._queue: deque[SimEvent] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    def request(self) -> SimEvent:
        event = SimEvent(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._queue.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            grant = self._queue.popleft()
            grant.succeed()
        else:
            self._in_use -= 1


class Simulator:
    """The event loop: virtual clock plus a heap of scheduled callbacks."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, callback, args))

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name=name)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def all_of(self, events: Iterable[SimEvent], name: str = "") -> AllOf:
        return AllOf(self, events, name=name)

    def process(self, body: ProcessBody, name: str = "proc") -> Process:
        """Register a generator as a process starting at the current time."""
        return Process(self, body, name=name)

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the heap drains (or ``until`` is reached).

        Returns the final simulation time.
        """
        while self._heap:
            time, _seq, callback, args = self._heap[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            if time < self._now - 1e-12:
                raise SimulationError("event heap time went backwards")
            self._now = time
            callback(*args)
        return self._now
