"""A small process-based discrete-event simulation kernel.

The kernel follows the SimPy model: a *process* is a Python generator that
yields :class:`SimEvent` objects; yielding suspends the process until the
event fires.  The :class:`Simulator` owns virtual time and a binary heap of
scheduled callbacks.

Only the features the Harmony runtime needs are implemented -- timeouts,
composable events, FIFO resources, interruptible (failable) events, and a
watchdog -- which keeps the kernel small enough to reason about and fully
unit-tested.

Failure model
-------------

An event can *fail* instead of succeeding (:meth:`SimEvent.fail`).  A
process waiting on a failed event has the exception thrown into its
generator at the ``yield``, so it can catch and recover (retry a faulted
transfer) or let it propagate, failing the process's own completion event
in turn.  A failure that reaches an event nobody waits on is *unhandled*:
the simulator re-raises it out of :meth:`Simulator.run` instead of
silently swallowing it.  The net effect is the guarantee the fault
subsystem (:mod:`repro.faults`) builds on: an injected fault either gets
handled by a recovery policy or surfaces as a typed exception -- never as
a hang.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import SimulationError

ProcessBody = Generator["SimEvent", Any, Any]


class SimEvent:
    """A one-shot event that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` fires it, resuming
    every waiting process with ``value``, and calling :meth:`fail` fires
    it in the failed state, throwing the exception into every waiting
    process.  Waiting on an already-fired event resumes the waiter
    immediately (on the next simulator step).

    ``name`` identifies the event in error messages; the runtime names
    its task events with the same ``t<tid>`` / ``gpu<d>.<stream>``
    scheme the static analyzer's diagnostics use, so a runtime failure
    and a pre-run diagnostic point at the same schedule entity.
    """

    __slots__ = ("sim", "name", "_fired", "_value", "_exc", "_waiters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._fired = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._waiters: list[Callable[[Any], None]] = []

    def _label(self) -> str:
        return f"event {self.name!r}" if self.name else "event"

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def failed(self) -> bool:
        """True once the event has fired in the failed state."""
        return self._fired and self._exc is not None

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(
                f"{self._label()} value read before the event fired"
            )
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        """Fire the event, waking all waiters at the current sim time."""
        if self._fired:
            raise SimulationError(f"{self._label()} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.sim.schedule(0.0, callback, value)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Fire the event in the failed state.

        Every waiter is woken with the exception (processes have it thrown
        into their generator).  If nobody is waiting, the failure is
        recorded as *unhandled* and :meth:`Simulator.run` re-raises it on
        its next step -- a fault can terminate the run with a typed error
        but can never be silently lost.
        """
        if self._fired:
            raise SimulationError(f"{self._label()} fired twice")
        if not isinstance(exc, BaseException):
            raise SimulationError(
                f"{self._label()} failed with non-exception {exc!r}"
            )
        self._fired = True
        self._exc = exc
        waiters, self._waiters = self._waiters, []
        if not waiters:
            self.sim._unhandled.append((self, exc))
        for callback in waiters:
            self.sim.schedule(0.0, callback, exc)
        return self

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the event fires (immediately if
        it already has).  On a failed event the callback receives the
        exception instance as its value; composite events and processes
        inspect :attr:`failed` to tell the cases apart."""
        if self._fired:
            self.sim.schedule(
                0.0, callback, self._exc if self._exc is not None else self._value
            )
        else:
            self._waiters.append(callback)


class Timeout(SimEvent):
    """An event that fires ``delay`` seconds after creation."""

    def __init__(self, sim: "Simulator", delay: float):
        super().__init__(sim)
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        sim.schedule(delay, self.succeed)


class AllOf(SimEvent):
    """Fires once every event in ``events`` has fired.

    The value is the list of constituent event values, in input order.
    An empty input fires immediately.  If any constituent fails, the
    composite fails with the first such exception (the remaining
    constituents are still awaited by whoever holds them, but this event
    reports the failure as soon as it is known).
    """

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent],
                 name: str = ""):
        super().__init__(sim, name=name)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            sim.schedule(0.0, self.succeed, [])
            return
        for event in self._events:
            event.add_callback(lambda _v, e=event: self._one_done(e))

    def _one_done(self, event: SimEvent) -> None:
        if self._fired:
            return
        if event.failed:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._events])


class Process(SimEvent):
    """Runs a generator as a simulation process.

    The process event itself fires when the generator returns; its value is
    the generator's return value, so processes compose (a process may yield
    another process to join it).  An exception escaping the generator --
    either raised directly or thrown in by a failed event it was waiting
    on -- fails the process event, propagating the failure to joiners.
    """

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str = "proc"):
        super().__init__(sim, name=name)
        self._body = body
        sim._register_process(self)
        sim.schedule(0.0, self._step, None)

    def _step(self, value: Any) -> None:
        self._advance(self._body.send, value)

    def _resume(self, event: SimEvent) -> None:
        if event.failed:
            self._advance(self._body.throw, event.exception)
        else:
            self._advance(self._body.send, event.value)

    def _advance(self, dispatch: Callable[[Any], Any], arg: Any) -> None:
        try:
            target = dispatch(arg)
        except StopIteration as stop:
            self.succeed(stop.value)
            self.sim._unregister_process(self)
            return
        except SimulationError:
            # Kernel-invariant violations abort the simulation outright.
            raise
        except BaseException as exc:
            self.fail(exc)
            self.sim._unregister_process(self)
            return
        if not isinstance(target, SimEvent):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield SimEvent instances"
            )
        target.add_callback(lambda _v, ev=target: self._resume(ev))


class Resource:
    """A counted FIFO resource (like a semaphore with fair queuing).

    ``request()`` returns an event that fires when a slot is granted;
    the holder must call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "res"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._queue: deque[SimEvent] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    def request(self) -> SimEvent:
        event = SimEvent(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._queue.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            grant = self._queue.popleft()
            grant.succeed()
        else:
            self._in_use -= 1


class Simulator:
    """The event loop: virtual clock plus a heap of scheduled callbacks.

    The loop carries a watchdog: ``run(max_steps=...)`` bounds the number
    of executed callbacks and ``run(horizon=...)`` bounds virtual time;
    exceeding either raises :class:`SimulationError` naming the processes
    still pending, instead of looping (or advancing virtual time) forever
    when a process leaks.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self._steps = 0
        self._unhandled: list[tuple[SimEvent, BaseException]] = []
        # Pending-process index.  Long simulations (multi-iteration chaos
        # runs) spawn one short-lived process per stream operation; an
        # append-only list both grows without bound and forces the
        # watchdog to scan every process that ever ran.  An insertion-
        # ordered dict keyed on the process gives O(1) register/retire
        # and keeps only live processes, while preserving the
        # registration order the watchdog's error message reports.
        self._processes: dict[Process, None] = {}
        #: Optional execution-trace recorder (duck-typed
        #: :class:`repro.trace.recorder.TraceRecorder`).  Traced layers
        #: guard every recording on ``sim.trace is not None``, so the
        #: default costs one attribute read and the simulation schedule
        #: is bit-identical with tracing on or off -- recording never
        #: consumes virtual time.
        self.trace: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Callbacks executed so far (the watchdog's step counter)."""
        return self._steps

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, callback, args))

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name=name)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def all_of(self, events: Iterable[SimEvent], name: str = "") -> AllOf:
        return AllOf(self, events, name=name)

    def process(self, body: ProcessBody, name: str = "proc") -> Process:
        """Register a generator as a process starting at the current time."""
        return Process(self, body, name=name)

    def _register_process(self, process: Process) -> None:
        self._processes[process] = None

    def _unregister_process(self, process: Process) -> None:
        self._processes.pop(process, None)

    def _pending_processes(self, limit: int = 8) -> str:
        pending = [p.name for p in self._processes if not p.fired]
        shown = ", ".join(repr(n) for n in pending[:limit])
        more = len(pending) - min(len(pending), limit)
        if more > 0:
            shown += f", +{more} more"
        return shown or "(none)"

    def _raise_unhandled(self) -> None:
        event, exc = self._unhandled[0]
        self._unhandled.clear()
        raise exc

    def run(
        self,
        until: Optional[float] = None,
        max_steps: Optional[int] = None,
        horizon: Optional[float] = None,
    ) -> float:
        """Execute events until the heap drains (or ``until`` is reached).

        ``until`` pauses quietly at the given virtual time (resumable);
        ``max_steps`` / ``horizon`` are watchdog limits -- exceeding
        either raises :class:`SimulationError` naming the still-pending
        processes.  An unhandled event failure (see :meth:`SimEvent.fail`)
        is re-raised out of this method.

        Returns the final simulation time.
        """
        if self._unhandled:
            self._raise_unhandled()
        # The heap and pop are bound to locals: this loop runs once per
        # scheduled callback and is re-entered thousands of times across
        # a chaos sweep, so attribute lookups in it are measurable.
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            time, _seq, callback, args = heap[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            if horizon is not None and time > horizon:
                raise SimulationError(
                    f"simulation exceeded its virtual-time horizon "
                    f"({horizon:.6g}s) with work still pending; pending "
                    f"processes: {self._pending_processes()}"
                )
            if max_steps is not None and self._steps >= max_steps:
                raise SimulationError(
                    f"simulation exceeded {max_steps} steps without "
                    f"draining (suspected runaway or leaked process); "
                    f"pending processes: {self._pending_processes()}"
                )
            heappop(heap)
            if time < self._now - 1e-12:
                raise SimulationError("event heap time went backwards")
            self._now = time
            self._steps += 1
            callback(*args)
            if self._unhandled:
                self._raise_unhandled()
        return self._now
