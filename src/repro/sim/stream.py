"""CUDA-stream analog: a serial, in-order work queue on the simulator.

The Harmony runtime uses five streams per GPU (compute, swap-in, swap-out,
p2p-in, p2p-out) and CUDA events for cross-stream dependencies; this module
provides exactly that abstraction.  Submitting work returns a
:class:`~repro.sim.engine.SimEvent` that fires on completion, which doubles
as the ``cudaEvent`` recorded after the operation.

An operation that raises (a fault it did not recover from) *poisons* its
completion event -- the event fails with the exception, so dependents
observe a typed error instead of waiting forever -- and the stream keeps
draining subsequent operations, mirroring how a CUDA stream keeps
executing after an async error is surfaced on its event.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator

from repro.sim.engine import SimEvent, Simulator


class Stream:
    """A FIFO executor: queued operations run one at a time, in order.

    Operations are generators (sub-processes).  Each submitted op gets a
    completion :class:`SimEvent`; ops may themselves wait on events from
    other streams, giving CUDA-like cross-stream synchronization.
    """

    def __init__(self, sim: Simulator, name: str, device: int = -1):
        self.sim = sim
        self.name = name
        #: Owning GPU index for trace attribution (-1: not device-bound).
        self.device = device
        #: Trace lane: the short stream name ("compute", "swap_in", ...).
        self.lane = name.rsplit(".", 1)[-1]
        self._queue: deque[tuple[Generator, SimEvent, str]] = deque()
        self._running = False
        self.busy_time = 0.0
        self._ops_done = 0
        self._ops_failed = 0

    @property
    def ops_completed(self) -> int:
        return self._ops_done

    @property
    def ops_failed(self) -> int:
        return self._ops_failed

    def submit(self, op: Generator, label: str = "") -> SimEvent:
        """Enqueue ``op`` (a generator body) and return its completion event."""
        done = SimEvent(self.sim, name=f"{self.name}:{label}" if label else "")
        self._queue.append((op, done, label))
        if not self._running:
            self._running = True
            self.sim.process(self._drain(), name=f"stream:{self.name}")
        return done

    def delay(self, seconds: float, label: str = "") -> SimEvent:
        """Enqueue a fixed-duration operation (e.g. a kernel launch)."""

        def body() -> Generator:
            start = self.sim.now
            yield self.sim.timeout(seconds)
            self.busy_time += self.sim.now - start

        return self.submit(body(), label=label)

    def barrier(self, event: SimEvent) -> SimEvent:
        """Enqueue a wait: later ops on this stream run only after ``event``.

        Mirrors ``cudaStreamWaitEvent``.  Waiting does not count as busy
        time.
        """

        def body() -> Generator:
            yield event

        return self.submit(body())

    def call(self, fn: Callable[[], Any]) -> SimEvent:
        """Enqueue an instantaneous host callback in stream order."""

        def body() -> Generator:
            fn()
            return
            yield  # pragma: no cover - makes ``body`` a generator

        return self.submit(body())

    def _drain(self) -> Generator:
        while self._queue:
            op, done, label = self._queue.popleft()
            trace = self.sim.trace
            start = self.sim.now
            try:
                result = yield self.sim.process(op, name=f"{self.name}:op")
            except Exception as exc:
                # The op failed; fail its completion event so dependents
                # observe the typed error, and keep serving the queue.
                self._ops_failed += 1
                if trace is not None:
                    trace.span("stream", label, start, self.sim.now,
                               device=self.device, lane=self.lane, ok=0)
                done.fail(exc)
                continue
            self._ops_done += 1
            if trace is not None:
                trace.span("stream", label, start, self.sim.now,
                           device=self.device, lane=self.lane, ok=1)
            done.succeed(result)
        self._running = False


class StreamSet:
    """The five per-GPU streams the Harmony runtime uses (Section 4.4)."""

    NAMES = ("compute", "swap_in", "swap_out", "p2p_in", "p2p_out")

    def __init__(self, sim: Simulator, owner: str, device: int = -1):
        self.compute = Stream(sim, f"{owner}.compute", device=device)
        self.swap_in = Stream(sim, f"{owner}.swap_in", device=device)
        self.swap_out = Stream(sim, f"{owner}.swap_out", device=device)
        self.p2p_in = Stream(sim, f"{owner}.p2p_in", device=device)
        self.p2p_out = Stream(sim, f"{owner}.p2p_out", device=device)

    def all(self) -> tuple[Stream, ...]:
        return (self.compute, self.swap_in, self.swap_out, self.p2p_in, self.p2p_out)

    def by_name(self, name: str) -> Stream:
        if name not in self.NAMES:
            raise KeyError(f"unknown stream {name!r}; expected one of {self.NAMES}")
        return getattr(self, name)
