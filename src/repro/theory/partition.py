"""The reduction from Partition (Proposition A.2).

Given a Partition instance ``a_1..a_n``, emit the scheduling instance of
Table 2: ``B=3`` microbatches, ``G=2`` GPUs, memory ``M=7``, and ``3n+4``
layers -- two heavy single-layer bookends on each side, and a
``(5A, a_i, 5A)`` triple per number, where ``A = 6 * sum(a)``.  The layer
``3i+1`` (size 2) can join the pack of layer ``3i`` or ``3i+2`` (size 4
each, so a pair fits ``M=7`` but a triple does not), encoding which side
of the partition ``a_i`` lands on.

``target_makespan`` is the lower bound ``T`` of the proof; a packing
attains it iff the GPUs idle only during the forced-idle bookends, which
happens iff the chosen sides balance -- i.e. iff the Partition instance
is a YES instance.  ``witness_packing`` constructs the balancing packing
from a Partition certificate.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.common.errors import SchedulingError
from repro.theory.makespan import LayerItem, SchedulingInstance

B_MICROBATCHES = 3
G_GPUS = 2
MEMORY = 7.0


def partition_reduction(numbers: Sequence[int]) -> SchedulingInstance:
    """Emit the Table 2 scheduling instance for ``numbers``."""
    if not numbers or any(a <= 0 for a in numbers):
        raise SchedulingError("Partition instances need positive integers")
    big = 6.0 * sum(numbers)  # the "large enough" A
    layers: list[LayerItem] = [
        LayerItem(time=8 * big, size=6),
        LayerItem(time=8 * big, size=6),
    ]
    for a in numbers:
        layers.append(LayerItem(time=5 * big, size=4))
        layers.append(LayerItem(time=float(a), size=2))
        layers.append(LayerItem(time=5 * big, size=4))
    layers.append(LayerItem(time=8 * big, size=6))
    layers.append(LayerItem(time=8 * big, size=6))
    return SchedulingInstance(
        layers=tuple(layers),
        n_microbatches=B_MICROBATCHES,
        n_gpus=G_GPUS,
        memory=MEMORY,
    )


def target_makespan(numbers: Sequence[int]) -> float:
    """The proof's lower bound ``T``: (total work + forced idle) / G."""
    instance = partition_reduction(numbers)
    total = B_MICROBATCHES * sum(l.time for l in instance.layers)
    forced_idle = instance.layers[0].time + instance.layers[-1].time
    return (total + forced_idle) / G_GPUS


def witness_packing(numbers: Sequence[int], side_one: Iterable[int]) -> list[list[int]]:
    """The forward-direction packing for a Partition certificate.

    ``side_one`` holds the (0-based) indices ``i`` whose ``a_i`` goes to
    GPU 1: layer ``3i+1`` packs with layer ``3i`` (forming {3i, 3i+1});
    the rest pack with ``3i+2``.
    """
    chosen = set(side_one)
    packs: list[list[int]] = [[0], [1]]
    for i in range(len(numbers)):
        low = 2 + 3 * i  # the paper indexes layers from 1; we use 0-based
        if i in chosen:
            packs.append([low, low + 1])
            packs.append([low + 2])
        else:
            packs.append([low])
            packs.append([low + 1, low + 2])
    n_layers = 3 * len(numbers) + 4
    packs.append([n_layers - 2])
    packs.append([n_layers - 1])
    return packs


def exact_partition(numbers: Sequence[int]) -> Optional[list[int]]:
    """Brute-force Partition solver (for cross-checking small instances):
    returns indices of one balanced side, or ``None`` for NO instances."""
    total = sum(numbers)
    if total % 2:
        return None
    target = total // 2
    n = len(numbers)
    for mask in range(1 << n):
        subset = [i for i in range(n) if mask >> i & 1]
        if sum(numbers[i] for i in subset) == target:
            return subset
    return None
