"""Appendix A: NP-hardness of the Harmony scheduling problem.

- :mod:`~repro.theory.makespan` -- the simplified Harmony scheduling
  problem (Definition A.1): contiguous layer packs, round-robin GPU
  assignment, per-microbatch chaining; exact makespan evaluation and
  brute-force optimal packing for small instances.
- :mod:`~repro.theory.partition` -- the polynomial reduction from the
  Partition problem (Table 2 of the appendix), the target makespan ``T``,
  and the forward direction's explicit witness packing.
"""

from repro.theory.makespan import SchedulingInstance, LayerItem, makespan, brute_force_optimum
from repro.theory.partition import partition_reduction, witness_packing, target_makespan

__all__ = [
    "SchedulingInstance",
    "LayerItem",
    "makespan",
    "brute_force_optimum",
    "partition_reduction",
    "witness_packing",
    "target_makespan",
]
