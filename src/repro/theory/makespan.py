"""The simplified Harmony scheduling problem (Definition A.1).

Input: ``B`` microbatches, ``G`` GPUs, memory ``M`` per GPU, and ``n``
layers with processing times ``p_i`` and weight sizes ``m_i``.  A solution
partitions the layers into contiguous packs; pack ``j`` runs on GPU
``(j-1) mod G`` (round-robin), and microbatch ``b`` of pack ``j`` starts
at the earliest time when that GPU is idle *and* microbatch ``b`` finished
on pack ``j-1``.  Feasibility: every pack's weights fit in ``M``.

The makespan evaluator below implements that definition verbatim, and the
brute-force searcher enumerates all ``2^(n-1)`` contiguous partitions --
practical for the small instances the NP-hardness tests use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from repro.common.errors import SchedulingError


@dataclass(frozen=True)
class LayerItem:
    """One layer of the simplified problem."""

    time: float
    size: float


@dataclass(frozen=True)
class SchedulingInstance:
    """An instance of the Harmony scheduling problem."""

    layers: tuple[LayerItem, ...]
    n_microbatches: int
    n_gpus: int
    memory: float

    def __post_init__(self) -> None:
        if self.n_microbatches < 1 or self.n_gpus < 1 or not self.layers:
            raise SchedulingError("degenerate scheduling instance")

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def pack_time(self, pack: Sequence[int]) -> float:
        return sum(self.layers[i].time for i in pack)

    def pack_size(self, pack: Sequence[int]) -> float:
        return sum(self.layers[i].size for i in pack)

    def feasible(self, packs: Sequence[Sequence[int]]) -> bool:
        return all(self.pack_size(pack) <= self.memory for pack in packs)


def contiguous_partitions(n: int) -> Iterator[list[list[int]]]:
    """All contiguous partitions of layers 0..n-1 (2^(n-1) of them)."""
    for cut_mask in itertools.product((False, True), repeat=n - 1):
        packs: list[list[int]] = [[0]]
        for i, cut in enumerate(cut_mask, start=1):
            if cut:
                packs.append([i])
            else:
                packs[-1].append(i)
        yield packs


def makespan(instance: SchedulingInstance, packs: Sequence[Sequence[int]]) -> float:
    """Exact makespan of a feasible packing per Definition A.1.

    ``gpu_free[g]`` tracks when GPU ``g`` next idles; microbatch ``b`` of
    pack ``j`` starts at ``max(gpu_free, done(j-1, b))``.  Work items are
    serviced pack-major per GPU, matching the executions illustrated in
    Figure 17 of the appendix.
    """
    if not instance.feasible(packs):
        raise SchedulingError("packing violates the per-GPU memory bound")
    b_count = instance.n_microbatches
    gpu_free = [0.0] * instance.n_gpus
    prev_done: Optional[list[float]] = None
    finish = 0.0
    for j, pack in enumerate(packs):
        gpu = j % instance.n_gpus
        duration = instance.pack_time(pack)
        done = []
        for b in range(b_count):
            ready = prev_done[b] if prev_done is not None else 0.0
            start = max(gpu_free[gpu], ready)
            end = start + duration
            gpu_free[gpu] = end
            done.append(end)
        prev_done = done
        finish = max(finish, done[-1])
    return finish


def brute_force_optimum(instance: SchedulingInstance) -> tuple[float, list[list[int]]]:
    """Minimum makespan over every feasible contiguous packing."""
    best: Optional[tuple[float, list[list[int]]]] = None
    for packs in contiguous_partitions(instance.n_layers):
        if not instance.feasible(packs):
            continue
        cost = makespan(instance, packs)
        if best is None or cost < best[0]:
            best = (cost, packs)
    if best is None:
        raise SchedulingError("no feasible packing exists")
    return best


def total_processing_time(instance: SchedulingInstance) -> float:
    return instance.n_microbatches * sum(l.time for l in instance.layers)
