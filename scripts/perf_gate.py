#!/usr/bin/env python
"""Perf-regression gate: compare a bench report against the baseline.

Usage::

    python scripts/perf_gate.py --current BENCH_smoke.json
    python scripts/perf_gate.py --run                 # bench first, then gate
    python scripts/perf_gate.py --current X.json --update   # bless as baseline

Loads the committed baseline (``benchmarks/BENCH_baseline.json`` by
default) and the current report, matches cases by
``model|mode|gpus|minibatch``, and fails (exit 1) when any gated timing
regressed beyond the tolerance band.

Wall-clock comparisons across machines are meaningless raw, so every
timing is **normalized by its report's ``calibration_seconds``** -- the
wall time of a fixed pure-Python workload measured by the same process
that took the timings.  A machine that is 2x slower overall produces
~2x calibration and ~2x case timings; the ratio cancels.  What does not
cancel is a real hot-path regression: the case timing grows, the
calibration does not.

Gated metrics: ``search_seconds``, ``plan_seconds``, ``run_seconds``
(tracing overhead is reported but informational -- it is a difference
of two small numbers and too noisy to gate).  Timings under the noise
floor (50 ms raw) are never gated.  The gate also refuses to compare
reports whose planner facts disagree (different ``n_feasible`` or
``n_tasks`` means the two reports did not measure the same work -- that
is a correctness alarm, not a perf number).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Optional, Sequence

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.perf.schema import SCHEMA_VERSION, check_report  # noqa: E402

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "BENCH_baseline.json"
)

#: Timings gated against the baseline (normalized by calibration).
GATED_METRICS = ("search_seconds", "plan_seconds", "run_seconds")

#: Planner facts that must match exactly for a comparison to be valid.
FACT_METRICS = ("n_feasible", "n_tasks")

#: Raw timings below this are noise, never gated (seconds).
NOISE_FLOOR = 0.05

#: Default tolerance band: fail on > 25% normalized regression.
TOLERANCE = 0.25


def load_report(path: str) -> dict[str, Any]:
    with open(path) as fh:
        report = json.load(fh)
    check_report(report)
    return report


def compare(baseline: dict[str, Any], current: dict[str, Any],
            tolerance: float = TOLERANCE) -> list[str]:
    """Return a list of failure strings; empty means the gate passes."""
    failures: list[str] = []
    if baseline["schema_version"] != SCHEMA_VERSION \
            or current["schema_version"] != SCHEMA_VERSION:
        return [
            f"schema version mismatch: baseline "
            f"v{baseline['schema_version']}, current "
            f"v{current['schema_version']}, gate speaks v{SCHEMA_VERSION}"
        ]
    base_cal = baseline["calibration_seconds"]
    cur_cal = current["calibration_seconds"]
    if base_cal <= 0 or cur_cal <= 0:
        return ["calibration_seconds must be positive in both reports"]

    def key(case: dict[str, Any]) -> str:
        return (f"{case['model']}|{case['mode']}|{case['gpus']}"
                f"|{case['minibatch']}")

    base_cases = {key(c): c for c in baseline["cases"]}
    matched = 0
    for case in current["cases"]:
        base = base_cases.get(key(case))
        if base is None:
            continue  # new case: no baseline yet, nothing to gate
        matched += 1
        label = key(case)
        for fact in FACT_METRICS:
            if case[fact] != base[fact]:
                failures.append(
                    f"{label}: {fact} changed {base[fact]} -> {case[fact]} "
                    f"(the reports did not measure the same work; "
                    f"re-baseline deliberately)"
                )
        for metric in GATED_METRICS:
            base_raw, cur_raw = base[metric], case[metric]
            if base_raw < NOISE_FLOOR and cur_raw < NOISE_FLOOR:
                continue
            base_norm = base_raw / base_cal
            cur_norm = cur_raw / cur_cal
            if cur_norm > base_norm * (1.0 + tolerance):
                failures.append(
                    f"{label}: {metric} regressed "
                    f"{base_norm:.2f} -> {cur_norm:.2f} "
                    f"(normalized; raw {base_raw:.3f}s -> {cur_raw:.3f}s, "
                    f"> {tolerance:.0%} over baseline)"
                )
    if matched == 0:
        failures.append(
            "no case in the current report matches the baseline; "
            "nothing was gated"
        )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare a bench report against the committed baseline"
    )
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline report "
                             "(default benchmarks/BENCH_baseline.json)")
    parser.add_argument("--current", default=None,
                        help="current report to gate")
    parser.add_argument("--run", action="store_true",
                        help="run the smoke bench suite now and gate its "
                             "report (written to BENCH_gate.json)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats when --run is given (default 3)")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help=f"allowed normalized regression "
                             f"(default {TOLERANCE})")
    parser.add_argument("--update", action="store_true",
                        help="bless the current report as the new baseline "
                             "instead of gating")
    args = parser.parse_args(argv)

    if args.run:
        from repro.perf.bench import run_bench, write_report

        report = run_bench("smoke", repeats=args.repeats)
        write_report(report, "BENCH_gate.json")
        current = report
        print("ran smoke suite -> BENCH_gate.json")
    elif args.current:
        current = load_report(args.current)
    else:
        parser.error("need --current PATH or --run")

    if args.update:
        with open(args.baseline, "w") as fh:
            json.dump(current, fh, indent=2)
            fh.write("\n")
        print(f"updated baseline {args.baseline}")
        return 0

    baseline = load_report(args.baseline)
    failures = compare(baseline, current, tolerance=args.tolerance)
    if failures:
        print("PERF GATE FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"perf gate passed: {len(current['cases'])} case(s) within "
          f"{args.tolerance:.0%} of baseline "
          f"(calibration {current['calibration_seconds'] * 1e3:.1f} ms vs "
          f"baseline {baseline['calibration_seconds'] * 1e3:.1f} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
