#!/usr/bin/env python3
"""Regenerate the golden execution traces under ``tests/trace/golden/``.

The goldens pin the exact event sequence (canonical line format,
``repr``-printed floats, so bit-stable) of seeded fault-free runs for the
small zoo models in both execution modes.  ``tests/trace/test_golden.py``
imports THIS file for the matrix and the recording procedure, so test and
regeneration can never drift apart.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/regen_golden_traces.py

Only regenerate when a scheduler/runtime change legitimately moves the
timeline, commit the new goldens together with that change, and explain
the movement in the commit message.  A golden diff you cannot explain is
a regression, not churn.
"""

from pathlib import Path

#: (model, mode) cells of the golden matrix.
GOLDEN = (
    ("toy-transformer", "pp"),
    ("toy-transformer", "dp"),
    ("tiny-cnn", "pp"),
    ("tiny-cnn", "dp"),
)
GPUS = 2
MINIBATCH = 8
ITERATIONS = 1

#: Heterogeneous-bind golden: the toy transformer planned for 4 logical
#: GPUs and bound onto 2 fast + 2 slow physical devices (repro.virt).
#: Pins the exact rescaled timeline, so a timing-rescale change shows up
#: as a reviewable diff, not a surprise.
HETERO_MODEL = "toy-transformer"
HETERO_MODE = "pp"
HETERO_GPUS = 4
HETERO_FLOPS_SCALES = (1.5, 1.5, 0.75, 0.75)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "trace" / "golden"


def golden_path(model: str, mode: str) -> Path:
    return GOLDEN_DIR / f"{model}-{mode}.trace"


def hetero_golden_path() -> Path:
    return GOLDEN_DIR / f"{HETERO_MODEL}-{HETERO_MODE}-hetero.trace"


def record_hetero() -> str:
    """The heterogeneous-bind traced run; returns canonical trace text."""
    from repro.core.harmony import Harmony, HarmonyOptions
    from repro.experiments.common import server_for
    from repro.trace import TraceRecorder
    from repro.virt import DeviceBinding

    harmony = Harmony(
        HETERO_MODEL, server_for(HETERO_GPUS), MINIBATCH,
        options=HarmonyOptions(mode=HETERO_MODE),
    )
    bound = harmony.bind(DeviceBinding.heterogeneous(HETERO_FLOPS_SCALES))
    recorder = TraceRecorder()
    harmony.run(plan=bound, iterations=ITERATIONS, trace=recorder)
    return recorder.canonical() + "\n"


def record(model: str, mode: str) -> str:
    """One seeded fault-free traced run; returns the canonical trace text."""
    from repro.core.harmony import Harmony, HarmonyOptions
    from repro.experiments.common import server_for
    from repro.trace import TraceRecorder

    harmony = Harmony(
        model, server_for(GPUS), MINIBATCH,
        options=HarmonyOptions(mode=mode),
    )
    recorder = TraceRecorder()
    harmony.run(iterations=ITERATIONS, trace=recorder)
    return recorder.canonical() + "\n"


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for model, mode in GOLDEN:
        path = golden_path(model, mode)
        path.write_text(record(model, mode))
        lines = path.read_text().count("\n")
        print(f"wrote {path.relative_to(Path.cwd())} ({lines} events)")
    path = hetero_golden_path()
    path.write_text(record_hetero())
    lines = path.read_text().count("\n")
    print(f"wrote {path.relative_to(Path.cwd())} ({lines} events)")


if __name__ == "__main__":
    main()
