#!/usr/bin/env python3
"""Regenerate the golden execution traces under ``tests/trace/golden/``.

The goldens pin the exact event sequence (canonical line format,
``repr``-printed floats, so bit-stable) of seeded fault-free runs for the
small zoo models in both execution modes.  ``tests/trace/test_golden.py``
imports THIS file for the matrix and the recording procedure, so test and
regeneration can never drift apart.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/regen_golden_traces.py

Only regenerate when a scheduler/runtime change legitimately moves the
timeline, commit the new goldens together with that change, and explain
the movement in the commit message.  A golden diff you cannot explain is
a regression, not churn.
"""

from pathlib import Path

#: (model, mode) cells of the golden matrix.
GOLDEN = (
    ("toy-transformer", "pp"),
    ("toy-transformer", "dp"),
    ("tiny-cnn", "pp"),
    ("tiny-cnn", "dp"),
)
GPUS = 2
MINIBATCH = 8
ITERATIONS = 1

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "trace" / "golden"


def golden_path(model: str, mode: str) -> Path:
    return GOLDEN_DIR / f"{model}-{mode}.trace"


def record(model: str, mode: str) -> str:
    """One seeded fault-free traced run; returns the canonical trace text."""
    from repro.core.harmony import Harmony, HarmonyOptions
    from repro.experiments.common import server_for
    from repro.trace import TraceRecorder

    harmony = Harmony(
        model, server_for(GPUS), MINIBATCH,
        options=HarmonyOptions(mode=mode),
    )
    recorder = TraceRecorder()
    harmony.run(iterations=ITERATIONS, trace=recorder)
    return recorder.canonical() + "\n"


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for model, mode in GOLDEN:
        path = golden_path(model, mode)
        path.write_text(record(model, mode))
        lines = path.read_text().count("\n")
        print(f"wrote {path.relative_to(Path.cwd())} ({lines} events)")


if __name__ == "__main__":
    main()
