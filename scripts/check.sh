#!/usr/bin/env bash
# Repo-wide gate: lint + typecheck + tier-1 tests.
#
# ruff and mypy are optional in minimal environments (no network, no
# installs); when a tool is absent we say so and skip that leg rather
# than fail, so the test leg always runs.
set -u

cd "$(dirname "$0")/.."
export PYTHONPATH=src

failed=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests || failed=1
else
    echo "== ruff == not installed, skipping lint"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy src/repro/analysis || failed=1
else
    echo "== mypy == not installed, skipping typecheck"
fi

echo "== repro.lint =="
# Project-invariant linter (seeded RNG only, no wall clocks, frozen
# trace events, integer-exact capacity arithmetic); stdlib-only, so it
# always runs.
python -m repro.lint || failed=1

echo "== pytest (tier 1) =="
python -m pytest -x -q tests/ || failed=1

echo "== chaos smoke =="
python -m repro.cli chaos toy-transformer --minibatch 8 --gpus 2 --seeds 3 \
    || failed=1

echo "== cluster smoke =="
# Multi-server failure domains: whole-server loss on a stage-per-server
# pipeline (replica restore + cross-server re-plan) and a DP sweep under
# a scripted partition window; nonzero on a hang or broken per-link byte
# accounting.  JSON artifacts land in cluster-chaos-*.json.
python -m repro.cli chaos toy-transformer --minibatch 8 --gpus 2 \
    --servers 3 --seeds 3 --servers-lost 1 --iterations 3 \
    --json cluster-chaos-pp.json || failed=1
python -m repro.cli chaos toy-transformer --minibatch 9 --gpus 2 \
    --mode dp --servers 3 --seeds 2 --partition-at 0.001 \
    --partition-for 0.01 --iterations 2 --json cluster-chaos-dp.json \
    || failed=1

echo "== service smoke =="
# Seeded request storm through the hardened planning service: chaos and
# clean; exits nonzero on an unresolved request, a determinism mismatch
# or an excessive shed rate.
python -m repro.cli serve --requests 500 --seed 0 --chaos --intensity 1.0 \
    --check-determinism --max-shed-rate 0.35 --json service-chaos.json \
    || failed=1
python -m repro.cli serve --requests 200 --seed 1 \
    --check-determinism --max-shed-rate 0.10 --json service-clean.json \
    || failed=1

echo "== fleet smoke =="
# Multi-tenant fleet co-placement storms: a clean 2-server storm and a
# contended 1-server storm (mixed widths/shares; identity, partition AND
# time-slice placements; typed capacity sheds).  Exits nonzero on a
# leaked reservation, a determinism mismatch or an excessive shed rate.
# JSON artifacts land in fleet-*.json.
python -m repro.cli serve --requests 60 --seed 0 --fleet-servers 2 \
    --check-determinism --max-shed-rate 0.35 --json fleet-clean.json \
    || failed=1
python -m repro.cli serve --requests 80 --seed 1 --fleet-servers 1 \
    --workers 4 --check-determinism --max-shed-rate 0.5 \
    --json fleet-contended.json || failed=1

echo "== virt smoke =="
# Virtual-device binds: the same 4-logical-GPU plan bound identically,
# heterogeneously (2 fast + 2 slow), and oversubscribed onto 2 physical
# GPUs (deterministic time-slice); each bind is re-certified by the
# analyzer against per-device memory, then executed.  JSON artifacts
# land in virt-*.json.
python -m repro.cli bind toy-transformer --minibatch 16 --gpus 4 \
    --run --json virt-identity.json || failed=1
python -m repro.cli bind toy-transformer --minibatch 16 --gpus 4 \
    --hetero 1.5,1.5,0.75,0.75 --run --json virt-hetero.json || failed=1
python -m repro.cli bind toy-transformer --minibatch 16 --gpus 4 \
    --physical 2 --run --json virt-timeslice.json || failed=1

echo "== trace smoke =="
# Record, invariant-check, and export a clean and a chaos trace; the CLI
# exits nonzero if the recorded timeline violates a runtime invariant.
python -m repro.cli trace toy-transformer --minibatch 8 --gpus 2 \
    --out trace-clean.json || failed=1
python -m repro.cli trace toy-transformer --minibatch 8 --gpus 2 \
    --chaos-seed 1 --out trace-chaos.json || failed=1

exit "$failed"
